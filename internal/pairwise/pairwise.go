// Package pairwise implements the dynamic-programming sequence alignment
// kernels every higher layer builds on: global alignment with affine gap
// penalties (Gotoh), local alignment (Smith-Waterman), a banded global
// variant, a linear-memory score-only pass and a linear-space Hirschberg
// aligner.
//
// Scores are maximised; gap penalties are supplied as positive costs and a
// gap of length g costs Open + g·Extend.
//
// All kernels run on pooled dp.Workspace scratch memory, so repeated
// calls (a progressive alignment makes thousands) allocate only their
// results, not their O(n·m) DP planes.
package pairwise

import (
	"math"

	"repro/internal/bio"
	"repro/internal/dp"
	"repro/internal/dpkern"
	"repro/internal/submat"
)

// Aligner bundles the substitution matrix and gap model used by the
// alignment kernels. The zero value is not usable; construct with fields.
type Aligner struct {
	Sub *submat.Matrix
	Gap submat.Gap
	// Kernel selects the DP kernel family for Global/GlobalBanded: the
	// zero value (dpkern.Auto) uses the striped int16 kernels wherever
	// their exactness contract holds and the scalar float64 path
	// elsewhere. Results are byte-identical for every setting.
	Kernel dpkern.Kernel
}

// NewProtein returns an aligner with BLOSUM62 and the default protein
// gap penalties.
func NewProtein() Aligner {
	return Aligner{Sub: submat.BLOSUM62, Gap: submat.DefaultProteinGap}
}

// Result is an alignment of two sequences: equal-length gapped rows and
// the alignment score.
type Result struct {
	A, B  []byte
	Score float64
}

var negInf = math.Inf(-1)

// traceback states (shared with the dp package's packed traceback)
const (
	stM = dp.M // match/mismatch
	stX = dp.X // gap in B (A residue over '-')
	stY = dp.Y // gap in A ('-' over B residue)
)

// Global aligns a and b end to end with affine gap penalties and returns
// the optimal-score alignment.
func (al Aligner) Global(a, b []byte) Result {
	w := dp.GetRaw()
	defer dp.Put(w)
	state, score := al.globalInto(w, a, b)
	ra, rb := traceAffine(w, a, b, state)
	return Result{A: ra, B: rb, Score: score}
}

// kernelTable resolves the striped quantization table for this aligner,
// or nil when the scalar kernels were requested or the matrix has no
// exact int16 image.
func (al Aligner) kernelTable() *dpkern.Table {
	if al.Kernel == dpkern.Scalar {
		return nil
	}
	return dpkern.For(al.Sub, al.Gap)
}

// globalInto fills the workspace's DP and traceback planes for the
// global alignment of a and b — via the striped int16 kernel when its
// exactness bounds hold, the scalar float64 kernel otherwise — and
// returns the optimal end state and score. The traceback plane is
// identical whichever kernel ran.
func (al Aligner) globalInto(w *dp.Workspace, a, b []byte) (byte, float64) {
	n, m := len(a), len(b)
	if t := al.kernelTable(); t.Fits(n, m) {
		dpkern.NoteStriped()
		w.ReserveInt(n+1, m+1)
		ra := t.MapRows(w, a)
		rb := t.MapRows(w, b)
		return t.Global(w, ra, rb)
	}
	if al.Kernel != dpkern.Scalar {
		dpkern.NoteEscape()
	}
	open, ext := al.Gap.Open, al.Gap.Extend

	// DP planes. M: last pair aligned; X: gap in b; Y: gap in a.
	w.Reserve(n+1, m+1)
	M, X, Y, tb := w.MP, w.XP, w.YP, w.TB
	cols := m + 1

	M[0] = 0
	X[0], Y[0] = negInf, negInf
	for i := 1; i <= n; i++ {
		idx := i * cols
		M[idx], Y[idx] = negInf, negInf
		X[idx] = -(open + float64(i)*ext)
		tb[idx] = dp.PackTB(stM, stX, stM)
	}
	for j := 1; j <= m; j++ {
		M[j], X[j] = negInf, negInf
		Y[j] = -(open + float64(j)*ext)
		tb[j] = dp.PackTB(stM, stM, stY)
	}

	for i := 1; i <= n; i++ {
		row := i * cols
		prev := row - cols
		for j := 1; j <= m; j++ {
			s := al.Sub.Score(a[i-1], b[j-1])
			// M from best of three diagonal predecessors
			d := prev + j - 1
			bm, bs := stM, M[d]
			if X[d] > bs {
				bm, bs = stX, X[d]
			}
			if Y[d] > bs {
				bm, bs = stY, Y[d]
			}
			M[row+j] = bs + s

			// X: consume a[i-1] against a gap
			up := prev + j
			bx := stM
			openX := M[up] - open - ext
			if extX := X[up] - ext; openX >= extX {
				X[row+j] = openX
			} else {
				X[row+j] = extX
				bx = stX
			}

			// Y: consume b[j-1] against a gap
			left := row + j - 1
			by := stM
			openY := M[left] - open - ext
			if extY := Y[left] - ext; openY >= extY {
				Y[row+j] = openY
			} else {
				Y[row+j] = extY
				by = stY
			}
			tb[row+j] = dp.PackTB(bm, bx, by)
		}
	}

	// choose the best final state
	end := n*cols + m
	state, score := stM, M[end]
	if X[end] > score {
		state, score = stX, X[end]
	}
	if Y[end] > score {
		state, score = stY, Y[end]
	}
	return state, score
}

// GlobalIdentityInto computes the fractional identity of the optimal
// global alignment of a and b (exactly Identity applied to Global's
// rows) without materialising the gapped rows: it walks the traceback
// plane in the supplied workspace, so batch callers — the CLUSTALW
// %-identity distance matrix — allocate nothing per pair.
func (al Aligner) GlobalIdentityInto(w *dp.Workspace, a, b []byte) float64 {
	state, _ := al.globalInto(w, a, b)
	i, j := len(a), len(b)
	same, pairs := 0, 0
	for i > 0 || j > 0 {
		cell := w.TB[w.At(i, j)]
		switch state {
		case stM:
			pairs++
			if a[i-1] == b[j-1] {
				same++
			}
			i--
			j--
			state = dp.TBM(cell)
		case stX:
			i--
			state = dp.TBX(cell)
		default:
			j--
			state = dp.TBY(cell)
		}
	}
	if pairs == 0 {
		return 0
	}
	return float64(same) / float64(pairs)
}

// traceAffine follows the packed traceback plane from (len(a), len(b))
// back to the origin, emitting the gapped rows. Shared by Global and
// GlobalBanded.
func traceAffine(w *dp.Workspace, a, b []byte, state byte) ([]byte, []byte) {
	n, m := len(a), len(b)
	ra := make([]byte, 0, n+m)
	rb := make([]byte, 0, n+m)
	i, j := n, m
	for i > 0 || j > 0 {
		cell := w.TB[w.At(i, j)]
		switch state {
		case stM:
			ra = append(ra, a[i-1])
			rb = append(rb, b[j-1])
			i--
			j--
			state = dp.TBM(cell)
		case stX:
			ra = append(ra, a[i-1])
			rb = append(rb, bio.Gap)
			i--
			state = dp.TBX(cell)
		default: // stY
			ra = append(ra, bio.Gap)
			rb = append(rb, b[j-1])
			j--
			state = dp.TBY(cell)
		}
	}
	reverse(ra)
	reverse(rb)
	return ra, rb
}

// GlobalScore computes the optimal global alignment score in O(min) memory
// without a traceback — two rolling rows per DP plane, borrowed from the
// workspace pool.
func (al Aligner) GlobalScore(a, b []byte) float64 {
	n, m := len(a), len(b)
	open, ext := al.Gap.Open, al.Gap.Extend
	w := dp.Get(2, m+1)
	defer dp.Put(w)
	cols := m + 1
	prevM, curM := w.MP[:cols], w.MP[cols:]
	prevX, curX := w.XP[:cols], w.XP[cols:]
	prevY, curY := w.YP[:cols], w.YP[cols:]

	prevM[0] = 0
	prevX[0], prevY[0] = negInf, negInf
	for j := 1; j <= m; j++ {
		prevM[j], prevX[j] = negInf, negInf
		prevY[j] = -(open + float64(j)*ext)
	}
	for i := 1; i <= n; i++ {
		curM[0], curY[0] = negInf, negInf
		curX[0] = -(open + float64(i)*ext)
		for j := 1; j <= m; j++ {
			s := al.Sub.Score(a[i-1], b[j-1])
			curM[j] = s + max3(prevM[j-1], prevX[j-1], prevY[j-1])
			curX[j] = math.Max(prevM[j]-open-ext, prevX[j]-ext)
			curY[j] = math.Max(curM[j-1]-open-ext, curY[j-1]-ext)
		}
		prevM, curM = curM, prevM
		prevX, curX = curX, prevX
		prevY, curY = curY, prevY
	}
	return max3(prevM[m], prevX[m], prevY[m])
}

// Local aligns the best-scoring pair of substrings of a and b
// (Smith-Waterman with affine gaps). The empty alignment scores 0.
func (al Aligner) Local(a, b []byte) Result {
	n, m := len(a), len(b)
	open, ext := al.Gap.Open, al.Gap.Extend
	w := dp.Get(n+1, m+1)
	defer dp.Put(w)
	M, X, Y, tb := w.MP, w.XP, w.YP, w.TB
	cols := m + 1
	const stStop = dp.Stop

	for i := 0; i <= n; i++ {
		idx := i * cols
		M[idx], X[idx], Y[idx] = 0, negInf, negInf
	}
	for j := 0; j <= m; j++ {
		M[j], X[j], Y[j] = 0, negInf, negInf
	}

	bestI, bestJ, bestScore := 0, 0, 0.0
	for i := 1; i <= n; i++ {
		row := i * cols
		prev := row - cols
		for j := 1; j <= m; j++ {
			s := al.Sub.Score(a[i-1], b[j-1])
			// Best predecessor, clamped at the empty alignment (score 0).
			// stStop marks "this pair starts a fresh alignment".
			d := prev + j - 1
			bm, bs := stM, M[d]
			if X[d] > bs {
				bm, bs = stX, X[d]
			}
			if Y[d] > bs {
				bm, bs = stY, Y[d]
			}
			if bs <= 0 {
				bm, bs = stStop, 0
			}
			if v := bs + s; v <= 0 {
				M[row+j] = 0
				bm = stStop
			} else {
				M[row+j] = v
			}

			up := prev + j
			bx := stM
			openX := M[up] - open - ext
			if extX := X[up] - ext; openX >= extX {
				X[row+j] = openX
			} else {
				X[row+j] = extX
				bx = stX
			}
			left := row + j - 1
			by := stM
			openY := M[left] - open - ext
			if extY := Y[left] - ext; openY >= extY {
				Y[row+j] = openY
			} else {
				Y[row+j] = extY
				by = stY
			}
			tb[row+j] = dp.PackTB(bm, bx, by)
			if M[row+j] > bestScore {
				bestI, bestJ, bestScore = i, j, M[row+j]
			}
		}
	}
	if bestScore == 0 {
		return Result{}
	}
	ra := make([]byte, 0, 64)
	rb := make([]byte, 0, 64)
	i, j, state := bestI, bestJ, stM
	for i > 0 && j > 0 {
		cell := tb[i*cols+j]
		switch state {
		case stM:
			// A cell whose predecessor is stStop consumed its residue
			// pair starting from the empty alignment: emit it, then stop.
			prev := dp.TBM(cell)
			ra = append(ra, a[i-1])
			rb = append(rb, b[j-1])
			i--
			j--
			if prev == stStop {
				i, j = 0, 0
				break
			}
			state = prev
		case stX:
			ra = append(ra, a[i-1])
			rb = append(rb, bio.Gap)
			i--
			state = dp.TBX(cell)
		default:
			ra = append(ra, bio.Gap)
			rb = append(rb, b[j-1])
			j--
			state = dp.TBY(cell)
		}
	}
	reverse(ra)
	reverse(rb)
	return Result{A: ra, B: rb, Score: bestScore}
}

func max3(a, b, c float64) float64 {
	if b > a {
		a = b
	}
	if c > a {
		a = c
	}
	return a
}

func reverse(b []byte) {
	for i, j := 0, len(b)-1; i < j; i, j = i+1, j-1 {
		b[i], b[j] = b[j], b[i]
	}
}

// Identity returns the fractional identity of two aligned rows: identical
// residue pairs divided by the number of columns where both rows hold a
// residue. Returns 0 when no such column exists.
func Identity(a, b []byte) float64 {
	if len(a) != len(b) {
		return 0
	}
	same, pairs := 0, 0
	for i := range a {
		if a[i] == bio.Gap || b[i] == bio.Gap {
			continue
		}
		pairs++
		if a[i] == b[i] {
			same++
		}
	}
	if pairs == 0 {
		return 0
	}
	return float64(same) / float64(pairs)
}
