// Package pairwise implements the dynamic-programming sequence alignment
// kernels every higher layer builds on: global alignment with affine gap
// penalties (Gotoh), local alignment (Smith-Waterman), a banded global
// variant, a linear-memory score-only pass and a linear-space Hirschberg
// aligner.
//
// Scores are maximised; gap penalties are supplied as positive costs and a
// gap of length g costs Open + g·Extend.
package pairwise

import (
	"math"

	"repro/internal/bio"
	"repro/internal/submat"
)

// Aligner bundles the substitution matrix and gap model used by the
// alignment kernels. The zero value is not usable; construct with fields.
type Aligner struct {
	Sub *submat.Matrix
	Gap submat.Gap
}

// NewProtein returns an aligner with BLOSUM62 and the default protein
// gap penalties.
func NewProtein() Aligner {
	return Aligner{Sub: submat.BLOSUM62, Gap: submat.DefaultProteinGap}
}

// Result is an alignment of two sequences: equal-length gapped rows and
// the alignment score.
type Result struct {
	A, B  []byte
	Score float64
}

var negInf = math.Inf(-1)

// traceback states
const (
	stM byte = iota // match/mismatch
	stX             // gap in B (A residue over '-')
	stY             // gap in A ('-' over B residue)
)

// Global aligns a and b end to end with affine gap penalties and returns
// the optimal-score alignment.
func (al Aligner) Global(a, b []byte) Result {
	n, m := len(a), len(b)
	open, ext := al.Gap.Open, al.Gap.Extend

	// DP matrices. M: last pair aligned; X: gap in b; Y: gap in a.
	M := newMat(n+1, m+1)
	X := newMat(n+1, m+1)
	Y := newMat(n+1, m+1)
	// per-state traceback: which state each cell came from
	tbM := make([]byte, (n+1)*(m+1))
	tbX := make([]byte, (n+1)*(m+1))
	tbY := make([]byte, (n+1)*(m+1))
	at := func(i, j int) int { return i*(m+1) + j }

	M[0][0] = 0
	X[0][0], Y[0][0] = negInf, negInf
	for i := 1; i <= n; i++ {
		M[i][0], Y[i][0] = negInf, negInf
		X[i][0] = -(open + float64(i)*ext)
		tbX[at(i, 0)] = stX
	}
	for j := 1; j <= m; j++ {
		M[0][j], X[0][j] = negInf, negInf
		Y[0][j] = -(open + float64(j)*ext)
		tbY[at(0, j)] = stY
	}

	for i := 1; i <= n; i++ {
		for j := 1; j <= m; j++ {
			s := al.Sub.Score(a[i-1], b[j-1])
			// M from best of three diagonal predecessors
			bm, bs := stM, M[i-1][j-1]
			if X[i-1][j-1] > bs {
				bm, bs = stX, X[i-1][j-1]
			}
			if Y[i-1][j-1] > bs {
				bm, bs = stY, Y[i-1][j-1]
			}
			M[i][j] = bs + s
			tbM[at(i, j)] = bm

			// X: consume a[i-1] against a gap
			openX := M[i-1][j] - open - ext
			extX := X[i-1][j] - ext
			if openX >= extX {
				X[i][j] = openX
				tbX[at(i, j)] = stM
			} else {
				X[i][j] = extX
				tbX[at(i, j)] = stX
			}

			// Y: consume b[j-1] against a gap
			openY := M[i][j-1] - open - ext
			extY := Y[i][j-1] - ext
			if openY >= extY {
				Y[i][j] = openY
				tbY[at(i, j)] = stM
			} else {
				Y[i][j] = extY
				tbY[at(i, j)] = stY
			}
		}
	}

	// choose the best final state and trace back
	state, score := stM, M[n][m]
	if X[n][m] > score {
		state, score = stX, X[n][m]
	}
	if Y[n][m] > score {
		state, score = stY, Y[n][m]
	}

	ra := make([]byte, 0, n+m)
	rb := make([]byte, 0, n+m)
	i, j := n, m
	for i > 0 || j > 0 {
		switch state {
		case stM:
			prev := tbM[at(i, j)]
			ra = append(ra, a[i-1])
			rb = append(rb, b[j-1])
			i--
			j--
			state = prev
		case stX:
			prev := tbX[at(i, j)]
			ra = append(ra, a[i-1])
			rb = append(rb, bio.Gap)
			i--
			state = prev
		default: // stY
			prev := tbY[at(i, j)]
			ra = append(ra, bio.Gap)
			rb = append(rb, b[j-1])
			j--
			state = prev
		}
	}
	reverse(ra)
	reverse(rb)
	return Result{A: ra, B: rb, Score: score}
}

// GlobalScore computes the optimal global alignment score in O(min) memory
// without a traceback — two rolling rows per DP matrix.
func (al Aligner) GlobalScore(a, b []byte) float64 {
	n, m := len(a), len(b)
	open, ext := al.Gap.Open, al.Gap.Extend
	prevM := make([]float64, m+1)
	prevX := make([]float64, m+1)
	prevY := make([]float64, m+1)
	curM := make([]float64, m+1)
	curX := make([]float64, m+1)
	curY := make([]float64, m+1)

	prevM[0] = 0
	prevX[0], prevY[0] = negInf, negInf
	for j := 1; j <= m; j++ {
		prevM[j], prevX[j] = negInf, negInf
		prevY[j] = -(open + float64(j)*ext)
	}
	for i := 1; i <= n; i++ {
		curM[0], curY[0] = negInf, negInf
		curX[0] = -(open + float64(i)*ext)
		for j := 1; j <= m; j++ {
			s := al.Sub.Score(a[i-1], b[j-1])
			curM[j] = s + max3(prevM[j-1], prevX[j-1], prevY[j-1])
			curX[j] = math.Max(prevM[j]-open-ext, prevX[j]-ext)
			curY[j] = math.Max(curM[j-1]-open-ext, curY[j-1]-ext)
		}
		prevM, curM = curM, prevM
		prevX, curX = curX, prevX
		prevY, curY = curY, prevY
	}
	return max3(prevM[m], prevX[m], prevY[m])
}

// Local aligns the best-scoring pair of substrings of a and b
// (Smith-Waterman with affine gaps). The empty alignment scores 0.
func (al Aligner) Local(a, b []byte) Result {
	n, m := len(a), len(b)
	open, ext := al.Gap.Open, al.Gap.Extend
	M := newMat(n+1, m+1)
	X := newMat(n+1, m+1)
	Y := newMat(n+1, m+1)
	tbM := make([]byte, (n+1)*(m+1))
	tbX := make([]byte, (n+1)*(m+1))
	tbY := make([]byte, (n+1)*(m+1))
	at := func(i, j int) int { return i*(m+1) + j }
	const stStop byte = 3

	for i := 0; i <= n; i++ {
		M[i][0], X[i][0], Y[i][0] = 0, negInf, negInf
	}
	for j := 0; j <= m; j++ {
		M[0][j], X[0][j], Y[0][j] = 0, negInf, negInf
	}

	bestI, bestJ, bestScore := 0, 0, 0.0
	for i := 1; i <= n; i++ {
		for j := 1; j <= m; j++ {
			s := al.Sub.Score(a[i-1], b[j-1])
			// Best predecessor, clamped at the empty alignment (score 0).
			// stStop marks "this pair starts a fresh alignment".
			bm, bs := stM, M[i-1][j-1]
			if X[i-1][j-1] > bs {
				bm, bs = stX, X[i-1][j-1]
			}
			if Y[i-1][j-1] > bs {
				bm, bs = stY, Y[i-1][j-1]
			}
			if bs <= 0 {
				bm, bs = stStop, 0
			}
			v := bs + s
			if v <= 0 {
				M[i][j] = 0
				tbM[at(i, j)] = stStop
			} else {
				M[i][j] = v
				tbM[at(i, j)] = bm
			}

			openX := M[i-1][j] - open - ext
			extX := X[i-1][j] - ext
			if openX >= extX {
				X[i][j] = openX
				tbX[at(i, j)] = stM
			} else {
				X[i][j] = extX
				tbX[at(i, j)] = stX
			}
			openY := M[i][j-1] - open - ext
			extY := Y[i][j-1] - ext
			if openY >= extY {
				Y[i][j] = openY
				tbY[at(i, j)] = stM
			} else {
				Y[i][j] = extY
				tbY[at(i, j)] = stY
			}
			if M[i][j] > bestScore {
				bestI, bestJ, bestScore = i, j, M[i][j]
			}
		}
	}
	if bestScore == 0 {
		return Result{}
	}
	ra := make([]byte, 0, 64)
	rb := make([]byte, 0, 64)
	i, j, state := bestI, bestJ, stM
	for i > 0 && j > 0 {
		switch state {
		case stM:
			// A cell whose predecessor is stStop consumed its residue
			// pair starting from the empty alignment: emit it, then stop.
			prev := tbM[at(i, j)]
			ra = append(ra, a[i-1])
			rb = append(rb, b[j-1])
			i--
			j--
			if prev == stStop {
				i, j = 0, 0
				break
			}
			state = prev
		case stX:
			prev := tbX[at(i, j)]
			ra = append(ra, a[i-1])
			rb = append(rb, bio.Gap)
			i--
			state = prev
		default:
			prev := tbY[at(i, j)]
			ra = append(ra, bio.Gap)
			rb = append(rb, b[j-1])
			j--
			state = prev
		}
	}
	reverse(ra)
	reverse(rb)
	return Result{A: ra, B: rb, Score: bestScore}
}

func newMat(rows, cols int) [][]float64 {
	backing := make([]float64, rows*cols)
	m := make([][]float64, rows)
	for i := range m {
		m[i], backing = backing[:cols], backing[cols:]
	}
	return m
}

func max3(a, b, c float64) float64 {
	if b > a {
		a = b
	}
	if c > a {
		a = c
	}
	return a
}

func reverse(b []byte) {
	for i, j := 0, len(b)-1; i < j; i, j = i+1, j-1 {
		b[i], b[j] = b[j], b[i]
	}
}

// Identity returns the fractional identity of two aligned rows: identical
// residue pairs divided by the number of columns where both rows hold a
// residue. Returns 0 when no such column exists.
func Identity(a, b []byte) float64 {
	if len(a) != len(b) {
		return 0
	}
	same, pairs := 0, 0
	for i := range a {
		if a[i] == bio.Gap || b[i] == bio.Gap {
			continue
		}
		pairs++
		if a[i] == b[i] {
			same++
		}
	}
	if pairs == 0 {
		return 0
	}
	return float64(same) / float64(pairs)
}
