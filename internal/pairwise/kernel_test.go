package pairwise

import (
	"math/rand"
	"testing"

	"repro/internal/bio"
	"repro/internal/dp"
	"repro/internal/dpkern"
	"repro/internal/submat"
)

// Cross-kernel property tests: whatever the Kernel setting, Global,
// GlobalBanded and GlobalIdentityInto must produce byte-identical rows
// and bit-identical scores — the striped int16 kernel is an exactness
// contract, not an approximation, and the escape hatch must keep that
// true even when the int16 bounds do not hold.

func randSeqOf(rng *rand.Rand, n int, letters []byte) []byte {
	s := make([]byte, n)
	for i := range s {
		s[i] = letters[rng.Intn(len(letters))]
	}
	return s
}

func kernelPair(al Aligner) (scalar, striped Aligner) {
	scalar, striped = al, al
	scalar.Kernel = dpkern.Scalar
	striped.Kernel = dpkern.Striped
	return scalar, striped
}

func assertSameResult(t *testing.T, tag string, want, got Result) {
	t.Helper()
	if want.Score != got.Score {
		t.Fatalf("%s: score %v (scalar) != %v (striped)", tag, want.Score, got.Score)
	}
	if string(want.A) != string(got.A) || string(want.B) != string(got.B) {
		t.Fatalf("%s: rows differ\nscalar  %q\n        %q\nstriped %q\n        %q",
			tag, want.A, want.B, got.A, got.B)
	}
}

func TestStripedGlobalMatchesScalar(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	scalar, striped := kernelPair(NewProtein())
	letters := bio.AminoAcids.Letters()
	for trial := 0; trial < 60; trial++ {
		n, m := rng.Intn(120), rng.Intn(120)
		a, b := randSeqOf(rng, n, letters), randSeqOf(rng, m, letters)
		assertSameResult(t, "random", scalar.Global(a, b), striped.Global(a, b))
	}
}

func TestStripedGlobalMatchesScalarTieHeavy(t *testing.T) {
	// Two-letter sequences produce many equal-scoring paths; the striped
	// kernel must break every tie exactly like the scalar loop, so the
	// traceback (not just the score) has to match.
	rng := rand.New(rand.NewSource(62))
	scalar, striped := kernelPair(NewProtein())
	for trial := 0; trial < 60; trial++ {
		a := randSeqOf(rng, 30+rng.Intn(60), []byte("AG"))
		b := randSeqOf(rng, 30+rng.Intn(60), []byte("AG"))
		assertSameResult(t, "tie-heavy", scalar.Global(a, b), striped.Global(a, b))
	}
	// DNA matrices hit the 4-letter table path.
	dna := Aligner{Sub: submat.DNASimple, Gap: submat.DefaultDNAGap}
	dScalar, dStriped := kernelPair(dna)
	for trial := 0; trial < 30; trial++ {
		a := randSeqOf(rng, 40+rng.Intn(40), []byte("ACGT"))
		b := randSeqOf(rng, 40+rng.Intn(40), []byte("ACGT"))
		assertSameResult(t, "dna", dScalar.Global(a, b), dStriped.Global(a, b))
	}
}

func TestStripedBandedMatchesScalar(t *testing.T) {
	rng := rand.New(rand.NewSource(63))
	scalar, striped := kernelPair(NewProtein())
	letters := bio.AminoAcids.Letters()
	for trial := 0; trial < 40; trial++ {
		a := randSeqOf(rng, 20+rng.Intn(80), letters)
		b := randSeqOf(rng, 20+rng.Intn(80), letters)
		for _, band := range []int{1, 3, 10, 200} {
			assertSameResult(t, "banded",
				scalar.GlobalBanded(a, b, band), striped.GlobalBanded(a, b, band))
		}
	}
}

func TestStripedIdentityMatchesScalar(t *testing.T) {
	rng := rand.New(rand.NewSource(64))
	scalar, striped := kernelPair(NewProtein())
	letters := bio.AminoAcids.Letters()
	w := dp.GetRaw()
	defer dp.Put(w)
	for trial := 0; trial < 40; trial++ {
		a := randSeqOf(rng, 1+rng.Intn(100), letters)
		b := randSeqOf(rng, 1+rng.Intn(100), letters)
		is := scalar.GlobalIdentityInto(w, a, b)
		it := striped.GlobalIdentityInto(w, a, b)
		if is != it {
			t.Fatalf("identity: %v (scalar) != %v (striped)", is, it)
		}
		// And both must equal the definitional value from the rows.
		res := scalar.Global(a, b)
		if want := Identity(res.A, res.B); is != want {
			t.Fatalf("identity %v != Identity(rows) %v", is, want)
		}
	}
}

// bigMatrix is exactly int16-representable but its scores are large
// enough that moderate lengths overflow the a-priori value bounds — the
// adversarial range that must trigger the saturation escape.
func bigMatrix() *submat.Matrix {
	L := bio.AminoAcids.Len()
	table := make([][]float64, L)
	for i := range table {
		table[i] = make([]float64, L)
		for j := range table[i] {
			if i == j {
				table[i][j] = 900
			} else {
				table[i][j] = -900
			}
		}
	}
	return submat.New("big", bio.AminoAcids, table, -900)
}

func TestSaturationEscapeTriggersAndStaysExact(t *testing.T) {
	al := Aligner{Sub: bigMatrix(), Gap: submat.DefaultProteinGap}
	tbl := dpkern.For(al.Sub, al.Gap)
	if tbl == nil {
		t.Fatal("big matrix is integral; table must exist")
	}
	if !tbl.Fits(10, 10) {
		t.Fatal("10x10 with the big matrix should still fit")
	}
	if tbl.Fits(40, 40) {
		t.Fatal("40x40 with the big matrix must overflow the positive bound")
	}
	rng := rand.New(rand.NewSource(65))
	scalar, striped := kernelPair(al)
	letters := bio.AminoAcids.Letters()
	for trial := 0; trial < 20; trial++ {
		// Straddle the fit boundary so both the striped path (small) and
		// the escape path (large) are exercised against the scalar.
		n, m := 5+rng.Intn(60), 5+rng.Intn(60)
		a, b := randSeqOf(rng, n, letters), randSeqOf(rng, m, letters)
		assertSameResult(t, "saturation", scalar.Global(a, b), striped.Global(a, b))
	}
}

func TestNonIntegralMatrixEscapes(t *testing.T) {
	L := bio.AminoAcids.Len()
	table := make([][]float64, L)
	for i := range table {
		table[i] = make([]float64, L)
		for j := range table[i] {
			if i == j {
				table[i][j] = 1.3
			} else {
				table[i][j] = -0.7
			}
		}
	}
	al := Aligner{Sub: submat.New("frac", bio.AminoAcids, table, -0.7), Gap: submat.DefaultProteinGap}
	if dpkern.For(al.Sub, al.Gap) != nil {
		t.Fatal("fractional matrix must have no int16 table")
	}
	rng := rand.New(rand.NewSource(66))
	scalar, striped := kernelPair(al)
	letters := bio.AminoAcids.Letters()
	for trial := 0; trial < 10; trial++ {
		a := randSeqOf(rng, 10+rng.Intn(50), letters)
		b := randSeqOf(rng, 10+rng.Intn(50), letters)
		assertSameResult(t, "fractional", scalar.Global(a, b), striped.Global(a, b))
	}
}
