// Package cluster is a discrete cost-model simulator of the paper's
// evaluation platform: a 16-node Beowulf cluster of 550 MHz Pentium-III
// machines on gigabit Ethernet. Running the paper's experiments at full
// scale (N = 20000, or the 23-hour sequential MUSCLE baseline) is not
// feasible inside this repository's test budget, so the simulator prices
// each phase of Sample-Align-D with the complexity terms from the
// paper's §2.3/§3 analysis and constants calibrated against the paper's
// own anchor measurements:
//
//	anchor A (Fig. 4 text): 20000 synthetic sequences, p=16 → ~25 s
//	anchor B (Fig. 6): sequential MUSCLE, 2000 genome proteins → ~23 h
//	anchor C (Fig. 6): Sample-Align-D, 2000 genome proteins, p=16 → 9.82 min
//	anchor D (§1): CLUSTALW, 5000 sequences → ~1 year
//
// Anchors A and C are mutually inconsistent under any monotone cost
// model (aligning 20000 easy sequences cannot be cheaper than 2000 hard
// ones on the same hardware), which is why there are two presets: the
// Synthetic preset reproduces the Fig. 4/5 shapes, the Genome preset the
// Fig. 6 shape. EXPERIMENTS.md discusses the discrepancy.
package cluster

import (
	"fmt"
	"math"
)

// Network models the interconnect with a per-message latency and a
// per-byte cost (gigabit Ethernet ≈ 100 µs latency, 8 ns/byte).
type Network struct {
	Alpha float64 // seconds per message
	Beta  float64 // seconds per byte
}

// GigabitEthernet is the paper's interconnect.
var GigabitEthernet = Network{Alpha: 1e-4, Beta: 8e-9}

// Calibration holds the per-term unit costs (seconds per elementary
// operation of each complexity term).
type Calibration struct {
	Name string

	// KmerLocal prices step 1, the local k-mer ranking: w²·L.
	KmerLocal float64
	// SampleRank prices step 6, ranking w sequences against the k·p
	// global sample (the paper's w·(kp+1)²·L term, k = p−1). This term
	// grows with p² per sequence and is what bends the speedup curves
	// down at p=16 for the smaller data sets (Fig. 5).
	SampleRank float64
	// MuscleW2L and MuscleWL2 price the practical (draft) MUSCLE path on
	// a bucket: w²·L distance stage plus w·L² progressive stage.
	MuscleW2L float64
	MuscleWL2 float64
	// FineTuneWL2 prices the GA profile re-alignment: w·L².
	FineTuneWL2 float64
	// RefineN4 prices MUSCLE's iterative refinement at full input size
	// (N⁴) — only the sequential baseline pays it; buckets of ≤ 2N/p
	// sequences make it negligible, which is the algorithmic source of
	// the paper's superlinear speedup.
	RefineN4 float64
	// ClustalN4 prices sequential CLUSTALW's final alignment stage (N⁴),
	// anchored at "1 year for 5000 sequences".
	ClustalN4 float64
	// Hardness is a workload multiplier on the alignment kernels:
	// divergent real genome proteins drive MUSCLE's heuristics far
	// harder than ROSE synthetic families.
	Hardness float64

	Net Network
}

// Synthetic is calibrated to the paper's synthetic-data results
// (Fig. 4/5; anchor A).
func Synthetic() Calibration {
	return Calibration{
		Name:        "synthetic",
		KmerLocal:   2e-9,
		SampleRank:  1.6e-9,
		MuscleW2L:   5.3e-8,
		MuscleWL2:   1e-7,
		FineTuneWL2: 1e-7,
		RefineN4:    5.2e-9,
		ClustalN4:   5.0e-8,
		Hardness:    1,
		Net:         GigabitEthernet,
	}
}

// Genome is calibrated to the paper's Methanosarcina acetivorans
// experiment (Fig. 6; anchors B and C).
func Genome() Calibration {
	c := Synthetic()
	c.Name = "genome"
	c.Hardness = 210
	c.RefineN4 = 4.0e-9
	return c
}

// Phases is the simulated per-phase cost breakdown (seconds).
type Phases struct {
	KmerLocal  float64
	Sampling   float64
	Pivoting   float64
	Redistrib  float64
	LocalAlign float64
	Ancestor   float64
	FineTune   float64
	Glue       float64
	CommTotal  float64
	Total      float64
}

// SampleAlignD simulates one run of the distributed algorithm for N
// sequences of average length L on p processors and returns the phase
// breakdown (the slowest rank's timeline; buckets are balanced by the
// regular-sampling bound).
func (c Calibration) SampleAlignD(n, l, p int) (Phases, error) {
	if n < 1 || l < 1 || p < 1 {
		return Phases{}, fmt.Errorf("cluster: bad parameters n=%d l=%d p=%d", n, l, p)
	}
	var ph Phases
	w := float64(n) / float64(p)
	L := float64(l)
	fp := float64(p)

	if p == 1 {
		// single node: the pipeline collapses to the local aligner
		ph.LocalAlign = c.Hardness * (c.MuscleW2L*w*w*L + c.MuscleWL2*w*L*L)
		ph.Total = ph.LocalAlign
		return ph, nil
	}

	k := fp - 1 // samples per rank
	ph.KmerLocal = c.KmerLocal * w * w * L

	// sample exchange (all-gather of k·p sequences) + globalised ranking
	sampleBytes := k * fp * L
	ph.Sampling = c.SampleRank*w*(k*fp+1)*(k*fp+1)*L +
		commCost(c.Net, 2*fp, sampleBytes*fp)

	// pivot gather/broadcast: p(p−1) ranks + p−1 pivots (8 bytes each)
	ph.Pivoting = commCost(c.Net, 2*fp, 8*fp*(fp-1)+8*(fp-1))

	// all-to-all personalised exchange: each rank ships ~w·L bytes
	ph.Redistrib = commCost(c.Net, fp-1, w*L)

	// bucket alignment: regular sampling bounds the bucket by 2w, but the
	// expected size is w; we price the expectation (the paper's analysis)
	ph.LocalAlign = c.Hardness * (c.MuscleW2L*w*w*L + c.MuscleWL2*w*L*L)

	// ancestor phases: gather p ancestors of length L, align p sequences,
	// broadcast GA
	ancestorAlign := c.Hardness * (c.MuscleW2L*fp*fp*L + c.MuscleWL2*fp*L*L)
	ph.Ancestor = ancestorAlign + commCost(c.Net, 2*math.Log2(fp)+1, 2*fp*L)

	// fine-tune: profile alignment of the local alignment vs GA
	ph.FineTune = c.Hardness * c.FineTuneWL2 * w * L * L

	// glue: gather all rows at the root
	ph.Glue = commCost(c.Net, fp, float64(n)*L)

	ph.CommTotal = ph.Pivoting + ph.Redistrib + ph.Glue +
		commCost(c.Net, 2*fp, sampleBytes*fp) + commCost(c.Net, 2*math.Log2(fp)+1, 2*fp*L)
	ph.Total = ph.KmerLocal + ph.Sampling + ph.Pivoting + ph.Redistrib +
		ph.LocalAlign + ph.Ancestor + ph.FineTune + ph.Glue
	return ph, nil
}

// commCost prices a communication pattern of `msgs` messages moving
// `bytes` payload bytes through one NIC.
func commCost(net Network, msgs, bytes float64) float64 {
	if msgs < 0 {
		msgs = 0
	}
	return net.Alpha*msgs + net.Beta*bytes
}

// SequentialMuscle simulates full MUSCLE (draft + iterative refinement)
// on one node — the paper's 23-hour baseline.
func (c Calibration) SequentialMuscle(n, l int) float64 {
	w, L := float64(n), float64(l)
	draft := c.Hardness * (c.MuscleW2L*w*w*L + c.MuscleWL2*w*L*L)
	refine := c.RefineN4 * w * w * w * w
	return draft + refine
}

// SequentialClustalW simulates sequential CLUSTALW — the paper's
// "approximately 1 year for 5000 sequences" contrast.
func (c Calibration) SequentialClustalW(n, l int) float64 {
	w, L := float64(n), float64(l)
	return c.Hardness*(c.MuscleW2L*w*w*L*2) + c.ClustalN4*w*w*w*w + c.Hardness*c.MuscleWL2*w*L*L
}

// Speedup returns T(1)/T(p) for Sample-Align-D under this calibration
// (the paper's Fig. 5 metric: the p=1 baseline is the pipeline itself on
// one node, i.e. the draft local aligner on all N).
func (c Calibration) Speedup(n, l, p int) (float64, error) {
	t1, err := c.SampleAlignD(n, l, 1)
	if err != nil {
		return 0, err
	}
	tp, err := c.SampleAlignD(n, l, p)
	if err != nil {
		return 0, err
	}
	if tp.Total <= 0 {
		return 0, fmt.Errorf("cluster: non-positive simulated time")
	}
	return t1.Total / tp.Total, nil
}
