package cluster

import (
	"testing"
)

func TestAnchorA20000At16(t *testing.T) {
	// Fig. 4 text: 20000 synthetic sequences on 16 nodes in "around 25
	// seconds". Accept the right order of magnitude (10–120 s).
	ph, err := Synthetic().SampleAlignD(20000, 300, 16)
	if err != nil {
		t.Fatal(err)
	}
	if ph.Total < 10 || ph.Total > 120 {
		t.Fatalf("20000@16 simulated %.1fs, want tens of seconds", ph.Total)
	}
}

func TestAnchorBSequentialMuscle23h(t *testing.T) {
	// Fig. 6: sequential MUSCLE on 2000 genome proteins ≈ 23 h (82,800 s).
	got := Genome().SequentialMuscle(2000, 316)
	if got < 0.5*82800 || got > 1.5*82800 {
		t.Fatalf("sequential MUSCLE simulated %.0fs, want ≈82800s", got)
	}
}

func TestAnchorCGenome16Nodes(t *testing.T) {
	// Fig. 6: Sample-Align-D on 2000 genome proteins, p=16 ≈ 9.82 min
	// (589 s); the paper reports a 142× speedup over sequential MUSCLE.
	cal := Genome()
	ph, err := cal.SampleAlignD(2000, 316, 16)
	if err != nil {
		t.Fatal(err)
	}
	if ph.Total < 0.5*589 || ph.Total > 1.5*589 {
		t.Fatalf("2000@16 simulated %.0fs, want ≈589s", ph.Total)
	}
	ratio := cal.SequentialMuscle(2000, 316) / ph.Total
	if ratio < 70 || ratio > 300 {
		t.Fatalf("speedup vs sequential MUSCLE = %.0f×, want ≈142×", ratio)
	}
}

func TestAnchorDClustalWOneYear(t *testing.T) {
	// §1: CLUSTALW ≈ 1 year for 5000 sequences (3.15e7 s).
	got := Synthetic().SequentialClustalW(5000, 350)
	if got < 1e7 || got > 1e8 {
		t.Fatalf("CLUSTALW simulated %.3gs, want ≈3e7s", got)
	}
}

func TestFig4TimeDecreasesSharply(t *testing.T) {
	cal := Synthetic()
	for _, n := range []int{5000, 10000, 20000} {
		prev := 0.0
		for i, p := range []int{1, 4, 8} {
			ph, err := cal.SampleAlignD(n, 300, p)
			if err != nil {
				t.Fatal(err)
			}
			if i > 0 && ph.Total >= prev {
				t.Fatalf("N=%d: time did not decrease at p=%d (%.1f >= %.1f)",
					n, p, ph.Total, prev)
			}
			prev = ph.Total
		}
	}
}

func TestFig5SuperlinearSpeedup(t *testing.T) {
	cal := Synthetic()
	for _, n := range []int{5000, 10000, 20000} {
		for _, p := range []int{4, 8, 12, 16} {
			s, err := cal.Speedup(n, 300, p)
			if err != nil {
				t.Fatal(err)
			}
			if s <= float64(p) {
				t.Fatalf("N=%d p=%d: speedup %.1f not superlinear", n, p, s)
			}
		}
	}
}

func TestFig5DeteriorationAt16ForSmallN(t *testing.T) {
	// The paper: "for the datasets of N=5000 and 10000, the speedup curve
	// goes up for 4, 8 and 12 processors but deteriorates when all 16
	// processors are used"; N=20000 keeps improving.
	cal := Synthetic()
	s12, _ := cal.Speedup(5000, 300, 12)
	s16, _ := cal.Speedup(5000, 300, 16)
	if s16 >= s12 {
		t.Fatalf("N=5000: speedup(16)=%.1f did not dip below speedup(12)=%.1f", s16, s12)
	}
	s12b, _ := cal.Speedup(10000, 300, 12)
	s16b, _ := cal.Speedup(10000, 300, 16)
	if s16b >= s12b {
		t.Fatalf("N=10000: speedup(16)=%.1f did not dip below speedup(12)=%.1f", s16b, s12b)
	}
	s12c, _ := cal.Speedup(20000, 300, 12)
	s16c, _ := cal.Speedup(20000, 300, 16)
	if s16c <= s12c {
		t.Fatalf("N=20000: speedup(16)=%.1f did not keep improving over speedup(12)=%.1f", s16c, s12c)
	}
}

func TestPhasesSumToTotal(t *testing.T) {
	ph, err := Genome().SampleAlignD(2000, 316, 8)
	if err != nil {
		t.Fatal(err)
	}
	sum := ph.KmerLocal + ph.Sampling + ph.Pivoting + ph.Redistrib +
		ph.LocalAlign + ph.Ancestor + ph.FineTune + ph.Glue
	if diff := sum - ph.Total; diff > 1e-9 || diff < -1e-9 {
		t.Fatalf("phases sum %.6f != total %.6f", sum, ph.Total)
	}
}

func TestCommunicationMinorShare(t *testing.T) {
	// §3's conclusion: "the communication cost of our system is much
	// less than the cost of the alignments".
	ph, err := Genome().SampleAlignD(2000, 316, 16)
	if err != nil {
		t.Fatal(err)
	}
	if ph.CommTotal > 0.1*ph.Total {
		t.Fatalf("communication %.1fs is %.0f%% of total %.1fs",
			ph.CommTotal, 100*ph.CommTotal/ph.Total, ph.Total)
	}
}

func TestValidation(t *testing.T) {
	if _, err := Synthetic().SampleAlignD(0, 300, 4); err == nil {
		t.Error("n=0 accepted")
	}
	if _, err := Synthetic().SampleAlignD(100, 0, 4); err == nil {
		t.Error("l=0 accepted")
	}
	if _, err := Synthetic().SampleAlignD(100, 300, 0); err == nil {
		t.Error("p=0 accepted")
	}
}

func TestSingleNodeEqualsLocalAlignerCost(t *testing.T) {
	cal := Synthetic()
	ph, err := cal.SampleAlignD(1000, 300, 1)
	if err != nil {
		t.Fatal(err)
	}
	if ph.Total != ph.LocalAlign || ph.CommTotal != 0 {
		t.Fatalf("p=1 breakdown: %+v", ph)
	}
}
