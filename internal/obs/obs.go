// Package obs is the pipeline's tracing layer: a context-propagated
// span tracer that records, per pipeline stage, wall time plus a small
// bag of attributes (worker count, kernel choice, comm bytes, cache
// outcome). A finished trace renders as a JSON span tree that the serve
// layer exposes on GET /v1/jobs/{id}/trace and persists alongside the
// job result.
//
// Design constraints, in order:
//
//  1. Zero cost when disabled. Start on a context with no tracer is a
//     single context lookup returning (ctx, nil); every Span method is
//     nil-safe, so instrumented code never branches. The disabled path
//     performs no allocations (BenchmarkStartEndDisabled enforces this).
//  2. Observation only. Spans are write-only sinks from the pipeline's
//     point of view: alignment code may Start/Set*/End spans but must
//     never read timing back (Span.Wall, Tracer.Document) — durations
//     come from a wall clock and would break the byte-identical
//     determinism contract if they influenced output. The determinism
//     lint analyzer enforces this split for the pipeline packages.
//  3. Bounded. A tracer caps its span count (MaxSpans) and samples
//     per-merge-node spans above a depth threshold (SampleDepth), so a
//     10k-sequence progressive merge cannot balloon the trace.
//
// Wall-clock access stays centralized: clock.go holds this package's
// only time calls, the second audited clock in the repo next to
// internal/core/clock.go.
package obs

import (
	"context"
	"strconv"
	"sync"
	"time"
)

type tracerKey struct{}
type spanKey struct{}

// DefaultMaxSpans bounds a trace when Options.MaxSpans is zero.
const DefaultMaxSpans = 4096

// DefaultSampleDepth is the merge-node sampling threshold when
// Options.SampleDepth is zero: StartDepth records spans with depth ≤ 3
// (the top four levels of a merge tree) and drops deeper ones.
const DefaultSampleDepth = 3

// Options configures a Tracer.
type Options struct {
	// ID names the trace (the serve layer uses the flight's trace ID).
	ID string
	// MaxSpans caps the number of recorded spans; once reached, Start
	// returns nil spans and the document reports the dropped count.
	// Zero means DefaultMaxSpans; negative means unbounded.
	MaxSpans int
	// SampleDepth is the StartDepth threshold: spans requested with a
	// depth greater than this are not recorded. Zero means
	// DefaultSampleDepth; negative disables depth-gated spans entirely.
	SampleDepth int
	// OnSpanEnd, when set, is invoked synchronously from Span.End with
	// the span's name and wall duration in seconds. The serve layer uses
	// it to feed per-stage latency histograms. It must be safe for
	// concurrent use; it is called outside the tracer lock.
	OnSpanEnd func(name string, seconds float64)
	// OnSpanClose, when set, is invoked synchronously from Span.End
	// (and once per span adopted via AttachRemote) with a snapshot of
	// the finished span, attributes included. The serve layer uses it
	// to feed the live job event stream. It must be safe for concurrent
	// use; it is called outside the tracer lock.
	OnSpanClose func(SpanClose)
}

// SpanClose is the snapshot handed to Options.OnSpanClose when a span
// finishes: the name, the wall duration, and the attributes recorded up
// to End. Remote marks spans adopted from another rank's tracer via
// AttachRemote rather than ended locally.
type SpanClose struct {
	Name       string
	DurationNs int64
	Attrs      []Attr
	Remote     bool
}

// Tracer collects one job's span tree. All methods are safe for
// concurrent use: the in-process driver runs p rank goroutines against
// one tracer, and progressive merges end spans from worker goroutines.
type Tracer struct {
	id          string
	maxSpans    int
	sampleDepth int
	onEnd       func(string, float64)
	onClose     func(SpanClose)
	t0          time.Time

	mu      sync.Mutex
	spans   int
	dropped int64
	roots   []*Span
}

// New builds a tracer. The zero Options value gives sane bounds.
func New(o Options) *Tracer {
	max := o.MaxSpans
	if max == 0 {
		max = DefaultMaxSpans
	}
	depth := o.SampleDepth
	if depth == 0 {
		depth = DefaultSampleDepth
	}
	return &Tracer{
		id:          o.ID,
		maxSpans:    max,
		sampleDepth: depth,
		onEnd:       o.OnSpanEnd,
		onClose:     o.OnSpanClose,
		t0:          now(),
	}
}

// ID returns the trace identifier the tracer was created with.
func (t *Tracer) ID() string { return t.id }

// Bounds returns the tracer's resolved span cap and sampling depth, for
// propagating the same tracing configuration to remote ranks.
func (t *Tracer) Bounds() (maxSpans, sampleDepth int) {
	return t.maxSpans, t.sampleDepth
}

// WithTracer installs t as the collector for spans started under the
// returned context. Installing nil returns ctx unchanged.
func WithTracer(ctx context.Context, t *Tracer) context.Context {
	if t == nil {
		return ctx
	}
	return context.WithValue(ctx, tracerKey{}, t)
}

// FromContext returns the tracer installed by WithTracer, or nil.
func FromContext(ctx context.Context) *Tracer {
	t, _ := ctx.Value(tracerKey{}).(*Tracer)
	return t
}

// Enabled reports whether spans started under ctx are recorded.
func Enabled(ctx context.Context) bool { return FromContext(ctx) != nil }

// Start opens a span named name as a child of the current span (or as a
// root if none is open) and returns a context carrying it. With no
// tracer installed it returns (ctx, nil) with zero allocations; the nil
// span accepts every Span method as a no-op.
func Start(ctx context.Context, name string) (context.Context, *Span) {
	t, _ := ctx.Value(tracerKey{}).(*Tracer)
	if t == nil {
		return ctx, nil
	}
	parent, _ := ctx.Value(spanKey{}).(*Span)
	sp := t.newSpan(name, parent)
	if sp == nil {
		return ctx, nil
	}
	return context.WithValue(ctx, spanKey{}, sp), sp
}

// StartDepth is Start gated by the tracer's sampling threshold: spans
// requested at a depth greater than Options.SampleDepth are not
// recorded. Progressive aligners use it for per-merge-node spans so
// deep merge trees stay bounded.
func StartDepth(ctx context.Context, name string, depth int) (context.Context, *Span) {
	t, _ := ctx.Value(tracerKey{}).(*Tracer)
	if t == nil {
		return ctx, nil
	}
	if t.sampleDepth < 0 || depth > t.sampleDepth {
		return ctx, nil
	}
	parent, _ := ctx.Value(spanKey{}).(*Span)
	sp := t.newSpan(name, parent)
	if sp == nil {
		return ctx, nil
	}
	return context.WithValue(ctx, spanKey{}, sp), sp
}

func (t *Tracer) newSpan(name string, parent *Span) *Span {
	start := sinceNs(t.t0)
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.maxSpans >= 0 && t.spans >= t.maxSpans {
		t.dropped++
		return nil
	}
	t.spans++
	sp := &Span{tr: t, name: name, startNs: start}
	if parent != nil {
		parent.children = append(parent.children, sp)
	} else {
		t.roots = append(t.roots, sp)
	}
	return sp
}

// Attr is one span attribute. Attributes keep insertion order so trace
// JSON is stable for a fixed instrumentation path.
type Attr struct {
	Key   string `json:"key"`
	Value string `json:"value"`
}

// Span is one timed region of the pipeline. The zero value of *Span
// (nil) is a valid no-op span: all methods may be called on it.
type Span struct {
	tr      *Tracer
	name    string
	startNs int64

	// guarded by tr.mu
	durNs    int64
	ended    bool
	attrs    []Attr
	children []*Span
}

// SetStr records a string attribute. No-op on a nil span.
func (s *Span) SetStr(key, value string) {
	if s == nil {
		return
	}
	s.tr.mu.Lock()
	s.attrs = append(s.attrs, Attr{Key: key, Value: value})
	s.tr.mu.Unlock()
}

// SetInt records an integer attribute. No-op on a nil span.
func (s *Span) SetInt(key string, value int64) {
	if s == nil {
		return
	}
	s.SetStr(key, strconv.FormatInt(value, 10))
}

// SetBool records a boolean attribute. No-op on a nil span.
func (s *Span) SetBool(key string, value bool) {
	if s == nil {
		return
	}
	s.SetStr(key, strconv.FormatBool(value))
}

// End closes the span, fixing its duration. Ending twice is a no-op, as
// is ending a nil span. If the tracer has an OnSpanEnd hook it fires
// here (outside the tracer lock), once per span.
func (s *Span) End() {
	if s == nil {
		return
	}
	dur := sinceNs(s.tr.t0) - s.startNs
	if dur < 0 {
		dur = 0
	}
	s.tr.mu.Lock()
	if s.ended {
		s.tr.mu.Unlock()
		return
	}
	s.ended = true
	s.durNs = dur
	hook := s.tr.onEnd
	closeHook := s.tr.onClose
	var sc SpanClose
	if closeHook != nil {
		sc = SpanClose{Name: s.name, DurationNs: dur, Attrs: append([]Attr(nil), s.attrs...)}
	}
	s.tr.mu.Unlock()
	if hook != nil {
		hook(s.name, float64(dur)/1e9)
	}
	if closeHook != nil {
		closeHook(sc)
	}
}

// AttachRemote grafts a remotely collected span tree — a worker rank's
// serialized Document — under s as already-ended child spans. Adopted
// spans count against this tracer's MaxSpans bound: once the cap is
// reached, remaining subtrees are dropped and accounted, and the remote
// document's own dropped count carries over. Span timings inside the
// adopted subtree stay relative to the remote tracer's start time, not
// this one's; consumers read them as durations, not as a shared
// timeline. The tracer's OnSpanEnd/OnSpanClose hooks fire once per
// adopted span (children before parents, mirroring live End order), so
// stage histograms and event streams cover remote ranks too. No-op on a
// nil span or nil document.
func (s *Span) AttachRemote(doc *Document) {
	if s == nil || doc == nil {
		return
	}
	t := s.tr
	var closed []SpanClose
	t.mu.Lock()
	t.dropped += doc.DroppedSpans
	var adopt func(parent *Span, d *SpanDoc)
	adopt = func(parent *Span, d *SpanDoc) {
		if t.maxSpans >= 0 && t.spans >= t.maxSpans {
			t.dropped += int64(docSpanCount(d))
			return
		}
		t.spans++
		sp := &Span{tr: t, name: d.Name, startNs: d.StartNs, durNs: d.DurationNs, ended: true}
		if len(d.Attrs) > 0 {
			sp.attrs = append([]Attr(nil), d.Attrs...)
		}
		parent.children = append(parent.children, sp)
		for _, c := range d.Children {
			adopt(sp, c)
		}
		closed = append(closed, SpanClose{
			Name:       sp.name,
			DurationNs: sp.durNs,
			Attrs:      append([]Attr(nil), sp.attrs...),
			Remote:     true,
		})
	}
	for _, r := range doc.Spans {
		adopt(s, r)
	}
	hook, closeHook := t.onEnd, t.onClose
	t.mu.Unlock()
	for _, sc := range closed {
		if hook != nil {
			hook(sc.Name, float64(sc.DurationNs)/1e9)
		}
		if closeHook != nil {
			closeHook(sc)
		}
	}
}

// docSpanCount counts the spans in a subtree, for drop accounting when
// an adopted tree overflows MaxSpans.
func docSpanCount(d *SpanDoc) int {
	n := 1
	for _, c := range d.Children {
		n += docSpanCount(c)
	}
	return n
}

// Wall returns the span's recorded duration (zero until End). This is a
// timing *reader*: calling it from a determinism-audited pipeline
// package is a lint error, because span timings must never influence
// alignment bytes.
func (s *Span) Wall() time.Duration {
	if s == nil {
		return 0
	}
	s.tr.mu.Lock()
	defer s.tr.mu.Unlock()
	return time.Duration(s.durNs)
}

// SpanDoc is the JSON form of one span.
type SpanDoc struct {
	Name       string     `json:"name"`
	StartNs    int64      `json:"start_ns"`
	DurationNs int64      `json:"duration_ns"`
	Attrs      []Attr     `json:"attrs,omitempty"`
	Children   []*SpanDoc `json:"children,omitempty"`
}

// Document is the JSON form of a finished trace.
type Document struct {
	TraceID      string     `json:"trace_id"`
	SpanCount    int        `json:"span_count"`
	DroppedSpans int64      `json:"dropped_spans,omitempty"`
	Spans        []*SpanDoc `json:"spans"`
}

// Document snapshots the tracer's span tree. Unended spans appear with
// a zero duration. Like Span.Wall this is a timing reader, off-limits
// to determinism-audited packages.
func (t *Tracer) Document() *Document {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	doc := &Document{
		TraceID:      t.id,
		SpanCount:    t.spans,
		DroppedSpans: t.dropped,
		Spans:        make([]*SpanDoc, 0, len(t.roots)),
	}
	for _, r := range t.roots {
		doc.Spans = append(doc.Spans, r.docLocked())
	}
	return doc
}

func (s *Span) docLocked() *SpanDoc {
	d := &SpanDoc{
		Name:       s.name,
		StartNs:    s.startNs,
		DurationNs: s.durNs,
	}
	if len(s.attrs) > 0 {
		d.Attrs = append([]Attr(nil), s.attrs...)
	}
	for _, c := range s.children {
		d.Children = append(d.Children, c.docLocked())
	}
	return d
}
