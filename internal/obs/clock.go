package obs

import "time"

// This file holds the obs package's only wall-clock access — the second
// audited clock in the repo, next to internal/core/clock.go. Trace
// timings are observational: they flow out to the trace document and
// per-stage histograms, never back into alignment bytes (the
// determinism lint analyzer flags any pipeline package that reads span
// timings).

// now is the tracer epoch clock.
func now() time.Time { return time.Now() }

// sinceNs returns monotonic nanoseconds elapsed since t0.
func sinceNs(t0 time.Time) int64 { return int64(time.Since(t0)) }
