package obs

import (
	"net"
	"net/http"
	"net/http/pprof"
	"time"
)

// PprofHandler returns a mux serving only the net/http/pprof endpoints.
// It is meant for a dedicated debug listener: the daemons mount it on a
// separate address behind -pprof-addr, never on the public API mux, so
// profiling can stay firewalled off from alignment traffic.
func PprofHandler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// ServePprof binds addr and serves the pprof endpoints on it in a
// background goroutine. It returns the bound address (useful with
// ":0") and a closer that shuts the listener down. The returned server
// has no relation to the public API server — it is always a separate
// listener.
func ServePprof(addr string) (string, *http.Server, error) {
	return Serve(addr, PprofHandler())
}

// Serve binds addr and serves h on it in a background goroutine: the
// shared separate-listener pattern behind the daemons' -pprof-addr and
// -metrics-addr flags. It returns the bound address (useful with ":0")
// and the server for shutdown; the listener is always distinct from the
// public API server.
func Serve(addr string, h http.Handler) (string, *http.Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", nil, err
	}
	srv := &http.Server{
		Handler:           h,
		ReadHeaderTimeout: 10 * time.Second,
	}
	go func() { _ = srv.Serve(ln) }()
	return ln.Addr().String(), srv, nil
}
