package obs

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestDisabledPathIsInert(t *testing.T) {
	ctx := context.Background()
	ctx2, sp := Start(ctx, "stage")
	if ctx2 != ctx {
		t.Fatal("Start without a tracer must return the context unchanged")
	}
	if sp != nil {
		t.Fatal("Start without a tracer must return a nil span")
	}
	// Every method must be a safe no-op on the nil span.
	sp.SetStr("k", "v")
	sp.SetInt("n", 7)
	sp.SetBool("b", true)
	sp.End()
	sp.End()
	if got := sp.Wall(); got != 0 {
		t.Fatalf("nil span Wall = %v, want 0", got)
	}
	if Enabled(ctx) {
		t.Fatal("Enabled must be false without a tracer")
	}
}

func TestDisabledPathAllocs(t *testing.T) {
	ctx := context.Background()
	allocs := testing.AllocsPerRun(1000, func() {
		ctx2, sp := Start(ctx, "stage")
		sp.SetInt("workers", 4)
		sp.End()
		_, sp2 := StartDepth(ctx2, "mergenode", 9)
		sp2.End()
	})
	if allocs != 0 {
		t.Fatalf("disabled tracer path allocates %.1f allocs/op, want 0", allocs)
	}
}

func TestSpanTreeNesting(t *testing.T) {
	tr := New(Options{ID: "t1"})
	ctx := WithTracer(context.Background(), tr)
	if !Enabled(ctx) {
		t.Fatal("Enabled must be true with a tracer installed")
	}
	ctx, root := Start(ctx, "job")
	root.SetStr("aligner", "muscle")
	cctx, child := Start(ctx, "bucketalign")
	child.SetInt("seqs", 40)
	_, grand := Start(cctx, "distmatrix")
	grand.End()
	child.End()
	// Sibling of bucketalign under the same root.
	_, sib := Start(ctx, "merge")
	sib.End()
	root.End()

	doc := tr.Document()
	if doc.TraceID != "t1" {
		t.Fatalf("trace id = %q", doc.TraceID)
	}
	if doc.SpanCount != 4 {
		t.Fatalf("span count = %d, want 4", doc.SpanCount)
	}
	if len(doc.Spans) != 1 || doc.Spans[0].Name != "job" {
		t.Fatalf("want single root span 'job', got %+v", doc.Spans)
	}
	r := doc.Spans[0]
	if len(r.Children) != 2 || r.Children[0].Name != "bucketalign" || r.Children[1].Name != "merge" {
		t.Fatalf("root children = %+v", r.Children)
	}
	if len(r.Children[0].Children) != 1 || r.Children[0].Children[0].Name != "distmatrix" {
		t.Fatalf("bucketalign children = %+v", r.Children[0].Children)
	}
	if len(r.Attrs) != 1 || r.Attrs[0] != (Attr{Key: "aligner", Value: "muscle"}) {
		t.Fatalf("root attrs = %+v", r.Attrs)
	}
	if got := r.Children[0].Attrs[0]; got != (Attr{Key: "seqs", Value: "40"}) {
		t.Fatalf("SetInt attr = %+v", got)
	}
}

func TestSpanDurations(t *testing.T) {
	tr := New(Options{})
	ctx := WithTracer(context.Background(), tr)
	_, sp := Start(ctx, "work")
	time.Sleep(2 * time.Millisecond)
	sp.End()
	if w := sp.Wall(); w <= 0 {
		t.Fatalf("Wall = %v, want > 0", w)
	}
	doc := tr.Document()
	if doc.Spans[0].DurationNs <= 0 {
		t.Fatalf("duration_ns = %d, want > 0", doc.Spans[0].DurationNs)
	}
	if doc.Spans[0].StartNs < 0 {
		t.Fatalf("start_ns = %d, want >= 0", doc.Spans[0].StartNs)
	}
}

func TestEndIdempotentAndHookOnce(t *testing.T) {
	var mu sync.Mutex
	calls := map[string]int{}
	tr := New(Options{OnSpanEnd: func(name string, sec float64) {
		mu.Lock()
		calls[name]++
		mu.Unlock()
		if sec < 0 {
			t.Errorf("negative duration for %s", name)
		}
	}})
	ctx := WithTracer(context.Background(), tr)
	_, sp := Start(ctx, "stage")
	sp.End()
	sp.End()
	sp.End()
	if calls["stage"] != 1 {
		t.Fatalf("OnSpanEnd fired %d times, want 1", calls["stage"])
	}
}

func TestSpanCap(t *testing.T) {
	tr := New(Options{MaxSpans: 3})
	ctx := WithTracer(context.Background(), tr)
	ctx, root := Start(ctx, "root")
	var kept int
	for i := 0; i < 10; i++ {
		_, sp := Start(ctx, "child")
		if sp != nil {
			kept++
			sp.End()
		}
	}
	root.End()
	if kept != 2 {
		t.Fatalf("kept %d children, want 2 (cap 3 minus root)", kept)
	}
	doc := tr.Document()
	if doc.SpanCount != 3 {
		t.Fatalf("span count = %d, want 3", doc.SpanCount)
	}
	if doc.DroppedSpans != 8 {
		t.Fatalf("dropped = %d, want 8", doc.DroppedSpans)
	}
}

func TestStartDepthSampling(t *testing.T) {
	tr := New(Options{SampleDepth: 2})
	ctx := WithTracer(context.Background(), tr)
	for depth, want := range map[int]bool{0: true, 1: true, 2: true, 3: false, 10: false} {
		_, sp := StartDepth(ctx, "mergenode", depth)
		if got := sp != nil; got != want {
			t.Fatalf("depth %d recorded=%v, want %v", depth, got, want)
		}
		sp.End()
	}
	// Negative SampleDepth disables depth-gated spans entirely.
	tr2 := New(Options{SampleDepth: -1})
	ctx2 := WithTracer(context.Background(), tr2)
	if _, sp := StartDepth(ctx2, "mergenode", 0); sp != nil {
		t.Fatal("SampleDepth<0 must drop all StartDepth spans")
	}
	// Default threshold records the top levels.
	tr3 := New(Options{})
	ctx3 := WithTracer(context.Background(), tr3)
	if _, sp := StartDepth(ctx3, "mergenode", DefaultSampleDepth); sp == nil {
		t.Fatal("default threshold must record depth == DefaultSampleDepth")
	}
	if _, sp := StartDepth(ctx3, "mergenode", DefaultSampleDepth+1); sp != nil {
		t.Fatal("default threshold must drop depth == DefaultSampleDepth+1")
	}
}

func TestConcurrentSpans(t *testing.T) {
	tr := New(Options{MaxSpans: -1})
	ctx := WithTracer(context.Background(), tr)
	ctx, root := Start(ctx, "job")
	var wg sync.WaitGroup
	const ranks = 8
	for r := 0; r < ranks; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			rctx, sp := Start(ctx, "rank")
			sp.SetInt("rank", int64(r))
			for j := 0; j < 50; j++ {
				_, c := Start(rctx, "phase")
				c.SetInt("j", int64(j))
				c.End()
			}
			sp.End()
		}(r)
	}
	wg.Wait()
	root.End()
	doc := tr.Document()
	if doc.SpanCount != 1+ranks+ranks*50 {
		t.Fatalf("span count = %d, want %d", doc.SpanCount, 1+ranks+ranks*50)
	}
	if len(doc.Spans[0].Children) != ranks {
		t.Fatalf("root has %d children, want %d", len(doc.Spans[0].Children), ranks)
	}
	for _, rank := range doc.Spans[0].Children {
		if len(rank.Children) != 50 {
			t.Fatalf("rank span has %d children, want 50", len(rank.Children))
		}
	}
}

func TestDocumentJSONRoundTrip(t *testing.T) {
	tr := New(Options{ID: "abc123"})
	ctx := WithTracer(context.Background(), tr)
	ctx, root := Start(ctx, "job")
	_, sp := Start(ctx, "guidetree")
	sp.SetStr("method", "upgma")
	sp.End()
	root.End()
	raw, err := json.Marshal(tr.Document())
	if err != nil {
		t.Fatal(err)
	}
	var back Document
	if err := json.Unmarshal(raw, &back); err != nil {
		t.Fatalf("trace JSON does not round-trip: %v", err)
	}
	if back.TraceID != "abc123" || len(back.Spans) != 1 {
		t.Fatalf("round-trip mismatch: %+v", back)
	}
	if !strings.Contains(string(raw), `"name":"guidetree"`) {
		t.Fatalf("JSON missing span name: %s", raw)
	}
}

func TestBounds(t *testing.T) {
	maxSpans, sampleDepth := New(Options{}).Bounds()
	if maxSpans != DefaultMaxSpans || sampleDepth != DefaultSampleDepth {
		t.Fatalf("default Bounds = (%d, %d), want (%d, %d)",
			maxSpans, sampleDepth, DefaultMaxSpans, DefaultSampleDepth)
	}
	maxSpans, sampleDepth = New(Options{MaxSpans: -1, SampleDepth: 7}).Bounds()
	if maxSpans != -1 || sampleDepth != 7 {
		t.Fatalf("Bounds = (%d, %d), want (-1, 7)", maxSpans, sampleDepth)
	}
}

func TestOnSpanCloseHook(t *testing.T) {
	var mu sync.Mutex
	var closes []SpanClose
	tr := New(Options{OnSpanClose: func(sc SpanClose) {
		mu.Lock()
		closes = append(closes, sc)
		mu.Unlock()
	}})
	ctx := WithTracer(context.Background(), tr)
	ctx, root := Start(ctx, "job")
	_, sp := Start(ctx, "guidetree")
	sp.SetStr("method", "upgma")
	sp.End()
	sp.End() // idempotent: the hook must not fire again
	root.End()

	if len(closes) != 2 {
		t.Fatalf("OnSpanClose fired %d times, want 2", len(closes))
	}
	first := closes[0]
	if first.Name != "guidetree" || first.Remote {
		t.Fatalf("first close = %+v, want local guidetree", first)
	}
	if first.DurationNs < 0 {
		t.Fatalf("negative close duration: %d", first.DurationNs)
	}
	if len(first.Attrs) != 1 || first.Attrs[0] != (Attr{Key: "method", Value: "upgma"}) {
		t.Fatalf("close attrs = %+v", first.Attrs)
	}
	if closes[1].Name != "job" {
		t.Fatalf("second close = %+v, want job", closes[1])
	}
}

func TestAttachRemote(t *testing.T) {
	// A "worker rank" produces a finished document under the shared ID...
	remote := New(Options{ID: "shared"})
	rctx := WithTracer(context.Background(), remote)
	rctx, rank := Start(rctx, "rank")
	rank.SetInt("rank", 2)
	_, st := Start(rctx, "distmatrix")
	st.End()
	rank.End()
	rdoc := remote.Document()

	// ...and the coordinator grafts it under a per-rank wrapper span,
	// replaying the adopted spans through both hooks with Remote set.
	var mu sync.Mutex
	endCalls := map[string]int{}
	var remoteCloses []SpanClose
	tr := New(Options{
		ID:        "shared",
		OnSpanEnd: func(name string, sec float64) { mu.Lock(); endCalls[name]++; mu.Unlock() },
		OnSpanClose: func(sc SpanClose) {
			if sc.Remote {
				mu.Lock()
				remoteCloses = append(remoteCloses, sc)
				mu.Unlock()
			}
		},
	})
	ctx := WithTracer(context.Background(), tr)
	ctx, job := Start(ctx, "job")
	_, worker := Start(ctx, "worker")
	worker.AttachRemote(rdoc)
	worker.End()
	job.End()

	doc := tr.Document()
	if doc.SpanCount != 4 { // job + worker + adopted rank + adopted distmatrix
		t.Fatalf("span count = %d, want 4", doc.SpanCount)
	}
	w := doc.Spans[0].Children[0]
	if len(w.Children) != 1 || w.Children[0].Name != "rank" {
		t.Fatalf("worker children = %+v, want adopted rank span", w.Children)
	}
	adopted := w.Children[0]
	if len(adopted.Attrs) != 1 || adopted.Attrs[0] != (Attr{Key: "rank", Value: "2"}) {
		t.Fatalf("adopted rank attrs = %+v", adopted.Attrs)
	}
	if len(adopted.Children) != 1 || adopted.Children[0].Name != "distmatrix" {
		t.Fatalf("adopted rank children = %+v", adopted.Children)
	}
	// Remote timings are preserved verbatim, not re-measured.
	if adopted.DurationNs != rdoc.Spans[0].DurationNs {
		t.Fatalf("adopted duration %d != remote %d", adopted.DurationNs, rdoc.Spans[0].DurationNs)
	}
	if endCalls["distmatrix"] != 1 || endCalls["rank"] != 1 {
		t.Fatalf("OnSpanEnd calls for adopted spans = %v", endCalls)
	}
	if len(remoteCloses) != 2 {
		t.Fatalf("remote OnSpanClose fired %d times, want 2", len(remoteCloses))
	}
}

func TestAttachRemoteRespectsSpanCap(t *testing.T) {
	remote := New(Options{MaxSpans: -1})
	rctx := WithTracer(context.Background(), remote)
	rctx, rank := Start(rctx, "rank")
	for i := 0; i < 5; i++ {
		_, sp := Start(rctx, "phase")
		sp.End()
	}
	rank.End()
	rdoc := remote.Document()
	rdoc.DroppedSpans = 3 // the remote side already shed spans

	tr := New(Options{MaxSpans: 4})
	ctx := WithTracer(context.Background(), tr)
	_, worker := Start(ctx, "worker")
	worker.AttachRemote(rdoc)
	worker.End()

	doc := tr.Document()
	if doc.SpanCount != 4 {
		t.Fatalf("span count = %d, want cap 4", doc.SpanCount)
	}
	// 6 remote spans minus 3 adopted, plus the remote side's own 3.
	if doc.DroppedSpans != 6 {
		t.Fatalf("dropped = %d, want 6", doc.DroppedSpans)
	}
}

func TestAttachRemoteNilSafety(t *testing.T) {
	var sp *Span
	sp.AttachRemote(&Document{Spans: []*SpanDoc{{Name: "rank"}}}) // nil span: no-op
	tr := New(Options{})
	ctx := WithTracer(context.Background(), tr)
	_, real := Start(ctx, "worker")
	real.AttachRemote(nil) // nil doc: no-op
	real.End()
	if got := tr.Document().SpanCount; got != 1 {
		t.Fatalf("span count = %d, want 1", got)
	}
}

func TestServePprofSeparateListener(t *testing.T) {
	addr, srv, err := ServePprof("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	resp, err := http.Get(fmt.Sprintf("http://%s/debug/pprof/", addr))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("pprof index status = %d", resp.StatusCode)
	}
	// The debug mux must not expose the public API routes.
	resp2, err := http.Get(fmt.Sprintf("http://%s/v1/jobs", addr))
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	if resp2.StatusCode != http.StatusNotFound {
		t.Fatalf("debug listener serves /v1/jobs with %d, want 404", resp2.StatusCode)
	}
}

func BenchmarkStartEndDisabled(b *testing.B) {
	ctx := context.Background()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		ctx2, sp := Start(ctx, "stage")
		sp.SetInt("workers", 4)
		sp.End()
		_ = ctx2
	}
}

func BenchmarkStartEndEnabled(b *testing.B) {
	tr := New(Options{MaxSpans: -1})
	ctx := WithTracer(context.Background(), tr)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, sp := Start(ctx, "stage")
		sp.End()
	}
}
