// Command benchgate is the bench regression gate for the perf
// trajectory: it diffs two consecutive BENCH_<PR>.json files (the
// scripts/bench.sh output) and exits non-zero when a named
// micro-benchmark's ns/op regressed by more than -max-regress percent,
// or when the new file's profile-PSP kernel speedup (striped vs
// scalar, single-thread) fell below -min-psp-speedup.
//
// Usage:
//
//	benchgate [flags] NEW.json          # kernel-speedup floor only
//	benchgate [flags] OLD.json NEW.json # + ns/op regression diff
//
// ns/op is only comparable between runs on the same hardware, so the
// regression diff is skipped (with a warning) when the two files
// record different host core counts — e.g. the first CI run after a
// locally generated baseline. Oversubscribed variants (a /workers=N
// suffix with N above the host core count) are also skipped: their
// timing is scheduler contention, not kernel speed, and swings far
// past any useful threshold between runs. The kernel-speedup floor is
// a ratio of two single-thread runs from the same file, so it always
// applies.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"regexp"
	"sort"
	"strconv"
)

type benchFile struct {
	PR   int `json:"pr"`
	Host struct {
		Cores int    `json:"cores"`
		Go    string `json:"go"`
	} `json:"host"`
	Gobench []struct {
		Name    string  `json:"name"`
		NsPerOp float64 `json:"ns_per_op"`
	} `json:"gobench"`
	KernelSpeedup map[string]float64 `json:"kernel_speedup"`
}

func load(path string) (*benchFile, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var bf benchFile
	if err := json.Unmarshal(data, &bf); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &bf, nil
}

func main() {
	maxRegress := flag.Float64("max-regress", 10,
		"fail when a benchmark's ns/op grew by more than this percent (0 disables)")
	minPSP := flag.Float64("min-psp-speedup", 2.0,
		"fail when the new file's ProfilePSP kernel_speedup is below this (0 disables)")
	flag.Parse()
	if flag.NArg() < 1 || flag.NArg() > 2 {
		fmt.Fprintln(os.Stderr, "usage: benchgate [flags] [OLD.json] NEW.json")
		os.Exit(2)
	}

	newest, err := load(flag.Arg(flag.NArg() - 1))
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchgate:", err)
		os.Exit(2)
	}

	failed := false

	if *minPSP > 0 {
		got, ok := newest.KernelSpeedup["ProfilePSP"]
		switch {
		case !ok:
			fmt.Printf("FAIL kernel_speedup: ProfilePSP missing from PR %d file (families: %v)\n",
				newest.PR, keys(newest.KernelSpeedup))
			failed = true
		case got < *minPSP:
			fmt.Printf("FAIL kernel_speedup: ProfilePSP %.2fx < %.2fx floor\n", got, *minPSP)
			failed = true
		default:
			fmt.Printf("ok   kernel_speedup: ProfilePSP %.2fx >= %.2fx floor\n", got, *minPSP)
		}
	}

	if flag.NArg() == 2 && *maxRegress > 0 {
		old, err := load(flag.Arg(0))
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchgate:", err)
			os.Exit(2)
		}
		if old.Host.Cores != newest.Host.Cores {
			fmt.Printf("warn ns/op diff skipped: PR %d ran on %d cores, PR %d on %d — not comparable\n",
				old.PR, old.Host.Cores, newest.PR, newest.Host.Cores)
		} else {
			oldNs := make(map[string]float64, len(old.Gobench))
			for _, b := range old.Gobench {
				oldNs[b.Name] = b.NsPerOp
			}
			compared, oversub := 0, 0
			for _, b := range newest.Gobench {
				base, ok := oldNs[b.Name]
				if !ok || base <= 0 {
					continue
				}
				if w := workersOf(b.Name); w > newest.Host.Cores {
					oversub++
					continue
				}
				compared++
				pct := (b.NsPerOp - base) / base * 100
				if pct > *maxRegress {
					fmt.Printf("FAIL %s: %.0f -> %.0f ns/op (+%.1f%% > %.0f%%)\n",
						b.Name, base, b.NsPerOp, pct, *maxRegress)
					failed = true
				}
			}
			fmt.Printf("ok   ns/op diff: %d shared benchmarks (%d oversubscribed skipped), PR %d vs PR %d, threshold +%.0f%%\n",
				compared, oversub, old.PR, newest.PR, *maxRegress)
		}
	}

	if failed {
		os.Exit(1)
	}
}

var workersRe = regexp.MustCompile(`/workers=(\d+)\b`)

// workersOf extracts the worker count from a /workers=N sub-benchmark
// name (0 when absent, i.e. single-thread benchmarks).
func workersOf(name string) int {
	m := workersRe.FindStringSubmatch(name)
	if m == nil {
		return 0
	}
	n, _ := strconv.Atoi(m[1])
	return n
}

func keys(m map[string]float64) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
