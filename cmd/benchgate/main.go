// Command benchgate is the bench regression gate for the perf
// trajectory: it diffs two consecutive BENCH_<PR>.json files (the
// scripts/bench.sh output) and exits non-zero when a named
// micro-benchmark's ns/op regressed by more than -max-regress percent,
// when the new file's profile-PSP kernel speedup (striped vs scalar,
// single-thread) fell below -min-psp-speedup, or when the journal
// group-commit benchmark's fsyncs-per-record at concurrency >= 8 is
// not below -max-journal-fsyncs (concurrent appenders must share
// commit groups; 1.0 would mean group commit is not batching at all).
//
// Usage:
//
//	benchgate [flags] NEW.json          # kernel-speedup floor only
//	benchgate [flags] OLD.json NEW.json # + ns/op regression diff
//
// ns/op is only comparable between runs on the same hardware, so the
// regression diff is skipped (with a warning) when the two files
// record different host core counts — e.g. the first CI run after a
// locally generated baseline. Oversubscribed variants (a /workers=N
// suffix with N above the host core count) are also skipped: their
// timing is scheduler contention, not kernel speed, and swings far
// past any useful threshold between runs. Likewise a benchmark whose
// own ns_samples within the NEW run spread wider than -max-regress is
// skipped with a warning: when one binary's samples differ by more
// than the threshold, a threshold-sized cross-run diff is noise by
// the benchmark's own measurement, and gating on it just flaps CI. The kernel-speedup floor is
// a ratio of two single-thread runs from the same file, so it always
// applies.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"regexp"
	"sort"
	"strconv"
)

type benchFile struct {
	PR   int `json:"pr"`
	Host struct {
		Cores int    `json:"cores"`
		Go    string `json:"go"`
	} `json:"host"`
	Gobench []struct {
		Name      string    `json:"name"`
		NsPerOp   float64   `json:"ns_per_op"`
		NsSamples []float64 `json:"ns_samples"`
	} `json:"gobench"`
	KernelSpeedup map[string]float64 `json:"kernel_speedup"`
	JournalFsyncs map[string]float64 `json:"journal_fsyncs_per_record"`
}

func load(path string) (*benchFile, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var bf benchFile
	if err := json.Unmarshal(data, &bf); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &bf, nil
}

func main() {
	maxRegress := flag.Float64("max-regress", 10,
		"fail when a benchmark's ns/op grew by more than this percent (0 disables)")
	minPSP := flag.Float64("min-psp-speedup", 2.0,
		"fail when the new file's ProfilePSP kernel_speedup is below this (0 disables)")
	maxJournalFsyncs := flag.Float64("max-journal-fsyncs", 1.0,
		"fail when journal fsyncs-per-record at concurrency >= 8 is not below this (0 disables)")
	flag.Parse()
	if flag.NArg() < 1 || flag.NArg() > 2 {
		fmt.Fprintln(os.Stderr, "usage: benchgate [flags] [OLD.json] NEW.json")
		os.Exit(2)
	}

	newest, err := load(flag.Arg(flag.NArg() - 1))
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchgate:", err)
		os.Exit(2)
	}

	failed := false

	if *minPSP > 0 {
		got, ok := newest.KernelSpeedup["ProfilePSP"]
		switch {
		case !ok:
			fmt.Printf("FAIL kernel_speedup: ProfilePSP missing from PR %d file (families: %v)\n",
				newest.PR, keys(newest.KernelSpeedup))
			failed = true
		case got < *minPSP:
			fmt.Printf("FAIL kernel_speedup: ProfilePSP %.2fx < %.2fx floor\n", got, *minPSP)
			failed = true
		default:
			fmt.Printf("ok   kernel_speedup: ProfilePSP %.2fx >= %.2fx floor\n", got, *minPSP)
		}
	}

	if *maxJournalFsyncs > 0 {
		// The floor is on concurrency >= 8: solo appends legitimately
		// fsync once per record (the Append contract), so conc=1 is
		// informational only. The section first appears in PR 10 files;
		// older baselines without it fail so a silently dropped
		// benchmark step cannot pass the gate.
		checked := 0
		for _, key := range keys(newest.JournalFsyncs) {
			got := newest.JournalFsyncs[key]
			if concOf(key) < 8 {
				continue
			}
			checked++
			if got >= *maxJournalFsyncs {
				fmt.Printf("FAIL journal_fsyncs_per_record: %s %.4f >= %.2f ceiling — group commit is not batching\n",
					key, got, *maxJournalFsyncs)
				failed = true
			} else {
				fmt.Printf("ok   journal_fsyncs_per_record: %s %.4f < %.2f ceiling\n",
					key, got, *maxJournalFsyncs)
			}
		}
		if checked == 0 {
			fmt.Printf("FAIL journal_fsyncs_per_record: no concurrency >= 8 entry in PR %d file (levels: %v)\n",
				newest.PR, keys(newest.JournalFsyncs))
			failed = true
		}
	}

	if flag.NArg() == 2 && *maxRegress > 0 {
		old, err := load(flag.Arg(0))
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchgate:", err)
			os.Exit(2)
		}
		if old.Host.Cores != newest.Host.Cores {
			fmt.Printf("warn ns/op diff skipped: PR %d ran on %d cores, PR %d on %d — not comparable\n",
				old.PR, old.Host.Cores, newest.PR, newest.Host.Cores)
		} else {
			oldNs := make(map[string]float64, len(old.Gobench))
			for _, b := range old.Gobench {
				oldNs[b.Name] = b.NsPerOp
			}
			compared, oversub, noisy := 0, 0, 0
			for _, b := range newest.Gobench {
				base, ok := oldNs[b.Name]
				if !ok || base <= 0 {
					continue
				}
				if w := workersOf(b.Name); w > newest.Host.Cores {
					oversub++
					continue
				}
				// A benchmark whose own same-binary samples spread wider
				// than the threshold cannot support a threshold-sized
				// verdict across two runs: any diff within its spread is
				// noise, not signal. Skip it like the other incomparable
				// cases instead of flapping CI.
				if spr := spread(b.NsSamples); spr > *maxRegress {
					noisy++
					fmt.Printf("warn %s skipped: own samples spread %.0f%% > %.0f%% threshold — too noisy to gate\n",
						b.Name, spr, *maxRegress)
					continue
				}
				compared++
				pct := (b.NsPerOp - base) / base * 100
				if pct > *maxRegress {
					fmt.Printf("FAIL %s: %.0f -> %.0f ns/op (+%.1f%% > %.0f%%)\n",
						b.Name, base, b.NsPerOp, pct, *maxRegress)
					failed = true
				}
			}
			fmt.Printf("ok   ns/op diff: %d shared benchmarks (%d oversubscribed, %d noisy skipped), PR %d vs PR %d, threshold +%.0f%%\n",
				compared, oversub, noisy, old.PR, newest.PR, *maxRegress)
		}
	}

	if failed {
		os.Exit(1)
	}
}

var (
	workersRe = regexp.MustCompile(`/workers=(\d+)\b`)
	concRe    = regexp.MustCompile(`^conc=(\d+)$`)
)

// spread reports a sample set's relative range, (max-min)/min as a
// percentage — the benchmark's own observed noise within one run (0
// for files predating the ns_samples field or with a single sample).
func spread(samples []float64) float64 {
	if len(samples) < 2 {
		return 0
	}
	lo, hi := samples[0], samples[0]
	for _, s := range samples[1:] {
		if s < lo {
			lo = s
		}
		if s > hi {
			hi = s
		}
	}
	if lo <= 0 {
		return 0
	}
	return (hi - lo) / lo * 100
}

// concOf extracts N from a "conc=N" journal-benchmark level key (0
// when the key has some other shape).
func concOf(key string) int {
	m := concRe.FindStringSubmatch(key)
	if m == nil {
		return 0
	}
	n, _ := strconv.Atoi(m[1])
	return n
}

// workersOf extracts the worker count from a /workers=N sub-benchmark
// name (0 when absent, i.e. single-thread benchmarks).
func workersOf(name string) int {
	m := workersRe.FindStringSubmatch(name)
	if m == nil {
		return 0
	}
	n, _ := strconv.Atoi(m[1])
	return n
}

func keys(m map[string]float64) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
