// Command samplealignd is one rank of a multi-process Sample-Align-D
// cluster over TCP: start one instance per node (or per core), each with
// its shard of the input; rank 0 writes the final alignment.
//
// Example — a 4-rank cluster on one machine:
//
//	samplealignd -rank 0 -addrs :7000,:7001,:7002,:7003 -in shard0.fa -out aligned.fa &
//	samplealignd -rank 1 -addrs :7000,:7001,:7002,:7003 -in shard1.fa &
//	samplealignd -rank 2 -addrs :7000,:7001,:7002,:7003 -in shard2.fa &
//	samplealignd -rank 3 -addrs :7000,:7001,:7002,:7003 -in shard3.fa &
//
// Every rank must list the same addresses (rank i listens on addrs[i]).
//
// Worker mode — instead of one batch run, serve successive cluster jobs
// dispatched by a samplealignsrv coordinator (which is rank 0 and ships
// each job's shard over the control connection):
//
//	samplealignd -worker-ctrl :9001 -worker-mesh 127.0.0.1:9101
//
// -metrics-addr serves rank-local Prometheus metrics (per-stage
// latencies, job counts, DP-kernel tallies) on a separate listener in
// either mode; -pprof-addr does the same for net/http/pprof.
package main

import (
	"context"
	"flag"
	"fmt"
	"log/slog"
	"os"
	"os/signal"
	"strings"
	"syscall"

	samplealign "repro"
	"repro/internal/obs"
	"repro/internal/serve"
)

func main() {
	rank := flag.Int("rank", -1, "this process's rank (required)")
	addrList := flag.String("addrs", "", "comma-separated listen addresses, one per rank (required)")
	in := flag.String("in", "", "this rank's input FASTA shard (required)")
	out := flag.String("out", "", "output FASTA file (rank 0 only; default stdout)")
	workers := flag.Int("workers", 1, "shared-memory workers in this rank, covering guide-tree construction (distance matrix, UPGMA/NJ) and merging; identical output for any value (0 = all cores)")
	aligner := flag.String("aligner", "muscle", "bucket aligner")
	kernel := flag.String("kernel", "auto", "DP kernel: auto|scalar|striped (byte-identical output)")
	timeout := flag.Duration("timeout", 0, "abort the run after this long (0 = no deadline)")
	workerCtrl := flag.String("worker-ctrl", "", "serve cluster jobs: control listen address (see samplealignsrv -cluster)")
	workerMesh := flag.String("worker-mesh", "", "worker mode: fixed rank mesh listen address (host:port reachable by the cluster)")
	logJSON := flag.Bool("log-json", false, "emit structured logs as JSON lines (default: text)")
	pprofAddr := flag.String("pprof-addr", "", "serve net/http/pprof on this address — a separate listener (empty = disabled)")
	metricsAddr := flag.String("metrics-addr", "", "serve rank-local Prometheus metrics (stage latencies, job counts, kernel tallies) on this address — a separate listener (empty = disabled)")
	flag.Parse()

	var h slog.Handler
	if *logJSON {
		h = slog.NewJSONHandler(os.Stderr, nil)
	} else {
		h = slog.NewTextHandler(os.Stderr, nil)
	}
	logger := slog.New(h).With("app", "samplealignd")

	if *pprofAddr != "" {
		bound, psrv, err := obs.ServePprof(*pprofAddr)
		if err != nil {
			fatal(fmt.Errorf("pprof listen %s: %w", *pprofAddr, err))
		}
		defer psrv.Close()
		logger.Info("pprof listening", "addr", bound)
	}

	// Rank-local metrics ride their own listener (same pattern as
	// -pprof-addr) so scraping never touches the mesh or control ports.
	var wm *serve.WorkerMetrics
	if *metricsAddr != "" {
		wm = serve.NewWorkerMetrics()
		bound, msrv, err := obs.Serve(*metricsAddr, wm.Handler())
		if err != nil {
			fatal(fmt.Errorf("metrics listen %s: %w", *metricsAddr, err))
		}
		defer msrv.Close()
		logger.Info("metrics listening", "addr", bound)
	}

	if *workerCtrl != "" || *workerMesh != "" {
		if *workerCtrl == "" || *workerMesh == "" {
			fatal(fmt.Errorf("worker mode needs both -worker-ctrl and -worker-mesh"))
		}
		ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
		defer stop()
		err := serve.RunWorker(ctx, serve.WorkerConfig{
			CtrlAddr: *workerCtrl,
			MeshAddr: *workerMesh,
			Metrics:  wm,
			Logger:   logger,
		})
		if err != nil && ctx.Err() == nil {
			fatal(err)
		}
		return
	}

	addrs := splitNonEmpty(*addrList)
	if *rank < 0 || *in == "" || len(addrs) == 0 {
		flag.Usage()
		os.Exit(2)
	}
	if *rank >= len(addrs) {
		fatal(fmt.Errorf("rank %d out of range for %d addresses", *rank, len(addrs)))
	}
	local, err := samplealign.ReadFASTAFile(*in)
	if err != nil {
		fatal(err)
	}
	logger.Info("rank starting", "rank", *rank, "procs", len(addrs),
		"local_seqs", len(local), "listen", addrs[*rank])

	// SIGINT/SIGTERM (and an optional -timeout deadline) cancel the run:
	// the rank unwinds its collectives, closes its peer connections and
	// exits instead of hanging the rest of the cluster.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}
	// Batch mode feeds the same stage histograms through a rank-local
	// tracer; output stays byte-identical (tracing only observes).
	if wm != nil {
		ctx = obs.WithTracer(ctx, obs.New(obs.Options{OnSpanEnd: wm.ObserveStage}))
		wm.JobStarted()
	}
	aln, err := samplealign.AlignTCPContext(ctx,
		samplealign.TCPRankConfig{Rank: *rank, Addrs: addrs},
		local,
		samplealign.WithWorkers(*workers),
		samplealign.WithLocalAligner(*aligner),
		samplealign.WithKernel(*kernel),
	)
	wm.JobFinished(err == nil)
	if err != nil {
		fatal(err)
	}
	if *rank != 0 {
		logger.Info("rank done", "rank", *rank)
		return
	}
	if *out == "" {
		if err := samplealign.WriteFASTA(os.Stdout, aln.Seqs); err != nil {
			fatal(err)
		}
		return
	}
	if err := samplealign.WriteFASTAFile(*out, aln.Seqs); err != nil {
		fatal(err)
	}
	logger.Info("alignment written", "num_seqs", aln.NumSeqs(), "width", aln.Width(), "out", *out)
}

func splitNonEmpty(s string) []string {
	var out []string
	for _, part := range strings.Split(s, ",") {
		if p := strings.TrimSpace(part); p != "" {
			out = append(out, p)
		}
	}
	return out
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "samplealignd:", err)
	os.Exit(1)
}
