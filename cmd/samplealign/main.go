// Command samplealign aligns a FASTA file with Sample-Align-D over
// in-process ranks (one machine standing in for the cluster).
//
// Usage:
//
//	samplealign -in seqs.fa -out aligned.fa -p 8
//	samplealign -in seqs.fa -p 4 -aligner muscle-refined -stats
//
// For multi-process TCP cluster runs use samplealignd on every node.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	samplealign "repro"
)

func main() {
	in := flag.String("in", "", "input FASTA file (required)")
	out := flag.String("out", "", "output FASTA file (default stdout)")
	procs := flag.Int("p", 4, "number of ranks (simulated cluster nodes)")
	workers := flag.Int("workers", 1, "shared-memory workers per rank, covering guide-tree construction (distance matrix, UPGMA/NJ) and merging; identical output for any value (0 = all cores)")
	aligner := flag.String("aligner", "muscle",
		fmt.Sprintf("bucket aligner: %s", strings.Join(samplealign.SequentialAligners(), "|")))
	sampleSize := flag.Int("samples", 0, "samples per rank for the globalised rank (0 = p-1)")
	kernel := flag.String("kernel", "auto", "DP kernel: auto|scalar|striped (byte-identical output; striped is faster where inputs fit int16 bounds)")
	noFineTune := flag.Bool("no-finetune", false, "skip the global-ancestor fine-tuning (ablation)")
	showStats := flag.Bool("stats", false, "print the per-rank run report to stderr")
	flag.Parse()

	if *in == "" {
		flag.Usage()
		os.Exit(2)
	}
	seqs, err := samplealign.ReadFASTAFile(*in)
	if err != nil {
		fatal(err)
	}
	if len(seqs) == 0 {
		fatal(fmt.Errorf("no sequences in %s", *in))
	}

	opts := []samplealign.Option{
		samplealign.WithWorkers(*workers),
		samplealign.WithLocalAligner(*aligner),
		samplealign.WithKernel(*kernel),
	}
	if *sampleSize > 0 {
		opts = append(opts, samplealign.WithSampleSize(*sampleSize))
	}
	if *noFineTune {
		opts = append(opts, samplealign.WithoutFineTune())
	}

	aln, report, err := samplealign.Align(seqs, *procs, opts...)
	if err != nil {
		fatal(err)
	}
	if *showStats {
		fmt.Fprintln(os.Stderr, report.Summary())
		for _, pr := range report.PerRank {
			fmt.Fprintf(os.Stderr, "  rank %d: bucket %d, align %v, total %v, %d B sent\n",
				pr.Rank, pr.BucketSize, pr.LocalAlign.Round(1e6), pr.Total.Round(1e6), pr.BytesSent)
		}
	}
	if *out == "" {
		if err := samplealign.WriteFASTA(os.Stdout, aln.Seqs); err != nil {
			fatal(err)
		}
		return
	}
	if err := samplealign.WriteFASTAFile(*out, aln.Seqs); err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "aligned %d sequences (width %d) -> %s\n",
		aln.NumSeqs(), aln.Width(), *out)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "samplealign:", err)
	os.Exit(1)
}
