// Command seqgen generates the synthetic data sets the paper evaluates
// on: ROSE-like families, phylogenetically diverse mixtures, genome
// protein samples and PREFAB-like quality sets.
//
// Usage:
//
//	seqgen -kind family  -n 5000 -len 300 -relatedness 800 -out fam.fa
//	seqgen -kind diverse -n 2000 -len 300 -out mix.fa
//	seqgen -kind genome  -n 2000 -out genes.fa
//	seqgen -kind shards  -n 512 -p 4 -out shard.fa   # shard0.fa … shard3.fa
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	samplealign "repro"
	"repro/internal/core"
	"repro/internal/fasta"
)

func main() {
	kind := flag.String("kind", "family", "family|diverse|genome|shards")
	n := flag.Int("n", 1000, "number of sequences")
	length := flag.Int("len", 300, "mean sequence length")
	relatedness := flag.Float64("relatedness", 800, "ROSE relatedness (family only)")
	procs := flag.Int("p", 4, "shard count (shards only)")
	seed := flag.Int64("seed", 1, "RNG seed")
	out := flag.String("out", "", "output FASTA file (required; shards derive names from it)")
	flag.Parse()

	if *out == "" {
		flag.Usage()
		os.Exit(2)
	}
	var (
		seqs []samplealign.Sequence
		err  error
	)
	switch *kind {
	case "family":
		seqs, err = samplealign.GenerateFamily(samplealign.FamilyConfig{
			N: *n, MeanLen: *length, Relatedness: *relatedness, Seed: *seed,
		})
	case "diverse":
		seqs, err = samplealign.GenerateDiverseSet(*n, *length, *seed)
	case "genome":
		seqs, err = samplealign.SampleGenomeProteins(samplealign.GenomeConfig{
			TargetBP: 5_000_000, MeanProteinLen: 316, Seed: *seed,
		}, *n, *seed+1)
	case "shards":
		seqs, err = samplealign.GenerateDiverseSet(*n, *length, *seed)
		if err == nil {
			err = writeShards(seqs, *procs, *out)
			if err == nil {
				return
			}
		}
	default:
		err = fmt.Errorf("unknown kind %q", *kind)
	}
	if err != nil {
		fatal(err)
	}
	if err := samplealign.WriteFASTAFile(*out, seqs); err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "seqgen: wrote %d sequences to %s\n", len(seqs), *out)
}

// writeShards splits the set block-wise (the paper's pre-placed input
// files) into shard<i>.<ext> files for samplealignd ranks.
func writeShards(seqs []samplealign.Sequence, p int, out string) error {
	base, ext := out, ".fa"
	if i := strings.LastIndex(out, "."); i > 0 {
		base, ext = out[:i], out[i:]
	}
	parts, _ := core.SplitBlocks(seqs, p)
	for r, part := range parts {
		name := fmt.Sprintf("%s%d%s", base, r, ext)
		if err := fasta.WriteFile(name, part); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "seqgen: wrote %d sequences to %s\n", len(part), name)
	}
	return nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "seqgen:", err)
	os.Exit(1)
}
