// Command samplealignlint is the driver of the project-invariant
// analyzer suite in internal/lint (ctxflow, determinism,
// pooldiscipline, durerr).
//
// It runs in two modes:
//
//   - vettool: speaks cmd/go's vet tool protocol (the same one
//     golang.org/x/tools/go/analysis/unitchecker implements, rebuilt
//     here on the standard library because the module is
//     dependency-free), so CI and local runs use
//
//     go build -o /tmp/samplealignlint ./cmd/samplealignlint
//     go vet -vettool=/tmp/samplealignlint ./...
//
//   - standalone: `samplealignlint [packages]` loads the module via
//     `go list -export` and prints findings directly; the default
//     pattern is ./....
//
// Analyzers can be selected with -ctxflow, -determinism,
// -pooldiscipline, -durerr (vet semantics: naming any runs only
// those). Suppressions are `//lint:allow <analyzer> <reason>` — see
// internal/lint and TESTING.md.
package main

import (
	"crypto/sha256"
	"encoding/json"
	"flag"
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/lint"
)

func main() {
	log := func(format string, args ...any) {
		fmt.Fprintf(os.Stderr, "samplealignlint: "+format+"\n", args...)
		os.Exit(1)
	}

	// cmd/go probes the tool before using it: `-V=full` must print a
	// version line ending in a build ID (it keys vet's result cache),
	// and `-flags` must print a JSON description of supported flags.
	versionFlag := flag.String("V", "", "print version and exit (cmd/go protocol; only -V=full is supported)")
	flagsFlag := flag.Bool("flags", false, "print a JSON description of supported flags and exit (cmd/go protocol)")
	jsonFlag := flag.Bool("json", false, "emit JSON output instead of text")
	printPath := flag.Bool("print-path", false, "print the path of this executable and exit")
	enableFlags := map[string]*bool{}
	for _, a := range lint.Analyzers() {
		enableFlags[a.Name] = flag.Bool(a.Name, false, "run only the named analyzers: "+a.Doc)
	}
	flag.Parse()

	switch {
	case *versionFlag != "":
		if *versionFlag != "full" {
			log("unsupported flag -V=%s", *versionFlag)
		}
		doVersion()
		return
	case *flagsFlag:
		doFlags()
		return
	case *printPath:
		exe, err := os.Executable()
		if err != nil {
			log("%v", err)
		}
		fmt.Println(exe)
		return
	}

	enabled := map[string]bool{}
	any := false
	for name, on := range enableFlags {
		if *on {
			enabled[name] = true
			any = true
		}
	}
	if !any {
		enabled = nil // all analyzers
	}

	args := flag.Args()
	if len(args) == 1 && strings.HasSuffix(args[0], ".cfg") {
		runVetUnit(args[0], enabled, *jsonFlag)
		return
	}
	runStandalone(args, enabled)
}

// doVersion implements `-V=full`: cmd/go hashes the reported line into
// its build cache key, so it must change whenever the binary does —
// hash the executable itself, exactly as unitchecker does.
func doVersion() {
	exe, err := os.Executable()
	if err != nil {
		fmt.Fprintf(os.Stderr, "samplealignlint: %v\n", err)
		os.Exit(1)
	}
	f, err := os.Open(exe)
	if err != nil {
		fmt.Fprintf(os.Stderr, "samplealignlint: %v\n", err)
		os.Exit(1)
	}
	h := sha256.New()
	if _, err := io.Copy(h, f); err != nil {
		fmt.Fprintf(os.Stderr, "samplealignlint: %v\n", err)
		os.Exit(1)
	}
	_ = f.Close()
	fmt.Printf("%s version devel comments-go-here buildID=%02x\n", filepath.Base(exe), h.Sum(nil))
}

// doFlags implements `-flags`: the JSON flag inventory cmd/go uses to
// split a `go vet` command line into tool flags and package patterns.
func doFlags() {
	type jsonFlagDef struct {
		Name  string
		Bool  bool
		Usage string
	}
	var defs []jsonFlagDef
	for _, a := range lint.Analyzers() {
		defs = append(defs, jsonFlagDef{Name: a.Name, Bool: true, Usage: a.Doc})
	}
	defs = append(defs, jsonFlagDef{Name: "json", Bool: true, Usage: "emit JSON output"})
	data, err := json.Marshal(defs)
	if err != nil {
		fmt.Fprintf(os.Stderr, "samplealignlint: %v\n", err)
		os.Exit(1)
	}
	os.Stdout.Write(data)
	fmt.Println()
}

// vetConfig is the per-package JSON config cmd/go hands a vet tool
// (the unitchecker wire format).
type vetConfig struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoVersion                 string
	GoFiles                   []string
	NonGoFiles                []string
	IgnoredFiles              []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	Standard                  map[string]bool
	PackageVetx               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

// runVetUnit analyzes one package as directed by a vet config file.
func runVetUnit(cfgPath string, enabled map[string]bool, asJSON bool) {
	fail := func(format string, args ...any) {
		fmt.Fprintf(os.Stderr, "samplealignlint: "+format+"\n", args...)
		os.Exit(1)
	}
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		fail("%v", err)
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		fail("parsing %s: %v", cfgPath, err)
	}
	// The tool exports no cross-package facts, but cmd/go requires the
	// facts file to exist after every run, dependencies included.
	writeVetx := func() {
		if cfg.VetxOutput != "" {
			if err := os.WriteFile(cfg.VetxOutput, []byte{}, 0o666); err != nil {
				fail("writing facts: %v", err)
			}
		}
	}
	// Dependency-only runs (VetxOnly) and packages outside this module
	// need no analysis: every analyzer scopes to module packages. Test
	// variants ("p [p.test]") are skipped too — the suite ignores
	// _test.go files, and the variant's remaining files were already
	// analyzed as the plain package, so running it would only duplicate
	// every finding.
	if cfg.VetxOnly || lint.StripTestVariant(cfg.ImportPath) != cfg.ImportPath ||
		!appliesToAny(cfg.ImportPath) {
		writeVetx()
		return
	}

	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range cfg.GoFiles {
		path := name
		if !filepath.IsAbs(path) {
			path = filepath.Join(cfg.Dir, name)
		}
		f, err := parser.ParseFile(fset, path, nil, parser.ParseComments)
		if err != nil {
			if cfg.SucceedOnTypecheckFailure {
				writeVetx()
				return
			}
			fail("parsing %s: %v", path, err)
		}
		files = append(files, f)
	}
	exports := map[string]string{}
	for path, file := range cfg.PackageFile {
		exports[path] = file
	}
	imp := vetImporter{
		base:      lint.ExportImporter(fset, exports),
		importMap: cfg.ImportMap,
	}
	info := lint.NewInfo()
	conf := types.Config{
		Importer:  imp,
		GoVersion: cfg.GoVersion,
		Error:     func(error) {},
	}
	pkg, err := conf.Check(cfg.ImportPath, fset, files, info)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			writeVetx()
			return
		}
		fail("type-checking %s: %v", cfg.ImportPath, err)
	}
	diags := lint.Run(fset, files, cfg.ImportPath, pkg, info, enabled)
	writeVetx()
	if len(diags) == 0 {
		return
	}
	if asJSON {
		printJSON(os.Stdout, fset, cfg.ImportPath, diags)
		return
	}
	for _, d := range diags {
		fmt.Fprintf(os.Stderr, "%s: %s [%s]\n", fset.Position(d.Pos), d.Message, d.Analyzer)
	}
	os.Exit(2)
}

// vetImporter maps source-level import paths through the vet config's
// ImportMap (vendoring, test variants) before export-data lookup.
type vetImporter struct {
	base      types.Importer
	importMap map[string]string
}

func (v vetImporter) Import(path string) (*types.Package, error) {
	if canon, ok := v.importMap[path]; ok {
		path = canon
	}
	return v.base.Import(path)
}

func appliesToAny(pkgPath string) bool {
	for _, a := range lint.Analyzers() {
		if a.Applies(pkgPath) {
			return true
		}
	}
	return false
}

// printJSON emits the unitchecker-compatible JSON diagnostic tree.
func printJSON(w io.Writer, fset *token.FileSet, pkgPath string, diags []lint.Diagnostic) {
	type jsonDiag struct {
		Posn    string `json:"posn"`
		Message string `json:"message"`
	}
	byAnalyzer := map[string][]jsonDiag{}
	for _, d := range diags {
		byAnalyzer[d.Analyzer] = append(byAnalyzer[d.Analyzer], jsonDiag{
			Posn:    fset.Position(d.Pos).String(),
			Message: d.Message,
		})
	}
	tree := map[string]map[string][]jsonDiag{pkgPath: byAnalyzer}
	out, _ := json.MarshalIndent(tree, "", "\t")
	w.Write(out)
	fmt.Fprintln(w)
}

// runStandalone loads the module with `go list` and analyzes every
// matched package.
func runStandalone(patterns []string, enabled map[string]bool) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	dir, err := os.Getwd()
	if err != nil {
		fmt.Fprintf(os.Stderr, "samplealignlint: %v\n", err)
		os.Exit(1)
	}
	pkgs, err := lint.LoadModule(dir, patterns)
	if err != nil {
		fmt.Fprintf(os.Stderr, "samplealignlint: %v\n", err)
		os.Exit(1)
	}
	found := 0
	for _, p := range pkgs {
		for _, d := range lint.Run(p.Fset, p.Files, p.PkgPath, p.Pkg, p.Info, enabled) {
			fmt.Printf("%s: %s [%s]\n", p.Fset.Position(d.Pos), d.Message, d.Analyzer)
			found++
		}
	}
	if found > 0 {
		fmt.Printf("samplealignlint: %d finding(s)\n", found)
		os.Exit(1)
	}
}
