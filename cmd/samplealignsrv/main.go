// Command samplealignsrv serves Sample-Align-D as a long-running HTTP
// job service: submit FASTA over HTTP, poll for status, fetch the
// aligned result. Jobs flow through a bounded queue with admission
// control (429 on overload) and identical resubmissions are answered
// from a content-addressed result cache.
//
// Usage:
//
//	samplealignsrv -addr :8080 -p 4 -max-concurrent 2
//
// Submit / poll / fetch:
//
//	curl -s --data-binary @seqs.fa 'localhost:8080/v1/jobs?procs=4'   # → {"id":"j..."}
//	curl -s localhost:8080/v1/jobs/<id>                               # status
//	curl -s localhost:8080/v1/jobs/<id>/result                        # aligned FASTA
//
// Or synchronously (client disconnect cancels the job):
//
//	curl -s --data-binary @seqs.fa localhost:8080/v1/align
//
// With -data-dir the server is durable: accepted jobs are journaled
// before they run and results are persisted content-addressed on disk,
// so a restart re-enqueues unfinished jobs, keeps finished ones
// visible, and serves their results from disk without recomputing:
//
//	samplealignsrv -addr :8080 -data-dir /var/lib/samplealign
//
// With -cluster, jobs fan out over a pre-connected TCP rank cluster of
// samplealignd worker daemons instead of in-process ranks:
//
//	samplealignd -worker-ctrl :9001 -worker-mesh 127.0.0.1:9101 &
//	samplealignd -worker-ctrl :9002 -worker-mesh 127.0.0.1:9102 &
//	samplealignsrv -addr :8080 -cluster 127.0.0.1:9001,127.0.0.1:9002 \
//	               -cluster-self 127.0.0.1:9100
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	samplealign "repro"
)

func main() {
	addr := flag.String("addr", ":8080", "HTTP listen address")
	procs := flag.Int("p", 4, "default ranks per job")
	workers := flag.Int("workers", 1, "default shared-memory workers per rank")
	aligner := flag.String("aligner", "muscle",
		fmt.Sprintf("default bucket aligner: %s", strings.Join(samplealign.SequentialAligners(), "|")))
	kernel := flag.String("kernel", "auto", "default DP kernel for jobs: auto|scalar|striped (byte-identical output)")
	maxConcurrent := flag.Int("max-concurrent", 2, "jobs aligning at once")
	maxQueued := flag.Int("max-queued", 64, "queued jobs beyond the running ones (429 past this)")
	maxProcs := flag.Int("max-procs", 64, "reject jobs requesting more ranks than this")
	workerBudget := flag.Int("worker-budget", 0, "clamp procs*workers per job (0 = no cap)")
	cacheEntries := flag.Int("cache-entries", 256, "result cache entry bound (-1 disables)")
	cacheBytes := flag.Int64("cache-bytes", 64<<20, "result cache byte bound (-1 unbounded)")
	dataDir := flag.String("data-dir", "", "durability directory: write-ahead job journal + on-disk result store (empty = in-memory only)")
	storeEntries := flag.Int("store-entries", 4096, "on-disk result store entry bound (-1 disables the disk tier)")
	storeBytes := flag.Int64("store-bytes", 1<<30, "on-disk result store byte bound (-1 unbounded)")
	drainTimeout := flag.Duration("drain-timeout", 30*time.Second, "how long SIGTERM/SIGINT waits for running jobs before hard-canceling (<0 skips draining)")
	cluster := flag.String("cluster", "", "comma-separated worker control addresses (samplealignd -worker-ctrl); empty = in-process ranks")
	clusterSelf := flag.String("cluster-self", "", "this server's rank-0 mesh listen address (required with -cluster)")
	flag.Parse()

	cfg := samplealign.ServerConfig{
		DefaultProcs:   *procs,
		DefaultWorkers: *workers,
		DefaultAligner: *aligner,
		DefaultKernel:  *kernel,
		MaxConcurrent:  *maxConcurrent,
		MaxQueued:      *maxQueued,
		MaxProcs:       *maxProcs,
		WorkerBudget:   *workerBudget,
		CacheEntries:   *cacheEntries,
		CacheBytes:     *cacheBytes,
		DataDir:        *dataDir,
		StoreEntries:   *storeEntries,
		StoreBytes:     *storeBytes,
		DrainTimeout:   *drainTimeout,
		ClusterSelf:    *clusterSelf,
		Logf: func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, "samplealignsrv: "+format+"\n", args...)
		},
	}
	for _, w := range strings.Split(*cluster, ",") {
		if w = strings.TrimSpace(w); w != "" {
			cfg.ClusterWorkers = append(cfg.ClusterWorkers, w)
		}
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	srv, err := samplealign.NewServer(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "samplealignsrv:", err)
		os.Exit(1)
	}
	if rec := srv.Recovery(); rec.Enabled {
		fmt.Fprintf(os.Stderr,
			"samplealignsrv: recovery from %s: %d journal records, %d finished jobs restored, %d re-enqueued (%d interrupted by the previous shutdown; clean shutdown: %v)\n",
			*dataDir, rec.JournalRecords, rec.Finished, rec.Requeued, rec.Interrupted, rec.CleanShutdown)
	}
	mode := "in-process ranks"
	if len(cfg.ClusterWorkers) > 0 {
		mode = fmt.Sprintf("TCP cluster of %d workers", len(cfg.ClusterWorkers))
	}
	fmt.Fprintf(os.Stderr, "samplealignsrv: listening on %s (%s, default p=%d, aligner %s)\n",
		*addr, mode, *procs, *aligner)
	if err := srv.ListenAndServe(ctx, *addr); err != nil {
		fmt.Fprintln(os.Stderr, "samplealignsrv:", err)
		os.Exit(1)
	}
}
