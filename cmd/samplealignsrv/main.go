// Command samplealignsrv serves Sample-Align-D as a long-running HTTP
// job service: submit FASTA over HTTP, poll for status, fetch the
// aligned result. Jobs flow through a bounded queue with admission
// control (429 on overload) and identical resubmissions are answered
// from a content-addressed result cache.
//
// Usage:
//
//	samplealignsrv -addr :8080 -p 4 -max-concurrent 2
//
// Submit / poll / fetch:
//
//	curl -s --data-binary @seqs.fa 'localhost:8080/v1/jobs?procs=4'   # → {"id":"j..."}
//	curl -s localhost:8080/v1/jobs/<id>                               # status
//	curl -s localhost:8080/v1/jobs/<id>/result                        # aligned FASTA
//	curl -s localhost:8080/v1/jobs/<id>/trace                         # pipeline span tree
//	curl -sN localhost:8080/v1/jobs/<id>/events                       # live progress (SSE)
//
// Or synchronously (client disconnect cancels the job):
//
//	curl -s --data-binary @seqs.fa localhost:8080/v1/align
//
// Or many inputs in one request — admitted all-or-nothing against the
// queue bound and journaled as a single commit group:
//
//	curl -s -H 'Content-Type: application/json' \
//	     -d '{"inputs":[{"fasta":">a\nACGT\n"},{"fasta":">b\nAAGT\n"}]}' \
//	     localhost:8080/v1/batch
//
// With -data-dir the server is durable: accepted jobs are journaled
// before they run and results are persisted content-addressed on disk,
// so a restart re-enqueues unfinished jobs, keeps finished ones
// visible, and serves their results from disk without recomputing:
//
//	samplealignsrv -addr :8080 -data-dir /var/lib/samplealign
//
// With -cluster, jobs fan out over a pre-connected TCP rank cluster of
// samplealignd worker daemons instead of in-process ranks:
//
//	samplealignd -worker-ctrl :9001 -worker-mesh 127.0.0.1:9101 &
//	samplealignd -worker-ctrl :9002 -worker-mesh 127.0.0.1:9102 &
//	samplealignsrv -addr :8080 -cluster 127.0.0.1:9001,127.0.0.1:9002 \
//	               -cluster-self 127.0.0.1:9100
//
// Observability: logs are structured (text by default, -log-json for
// JSON lines), every job carries a trace ID tying logs, the span tree
// at /v1/jobs/{id}/trace, the live Server-Sent-Events progress stream
// at /v1/jobs/{id}/events and the per-stage histograms on /metrics
// together, and -pprof-addr serves net/http/pprof on its own listener.
// In cluster mode the trace spans every rank: workers run their own
// tracers and ship their span trees back for grafting into one tree.
package main

import (
	"context"
	"flag"
	"fmt"
	"log/slog"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	samplealign "repro"
	"repro/internal/obs"
)

func main() {
	addr := flag.String("addr", ":8080", "HTTP listen address")
	procs := flag.Int("p", 4, "default ranks per job")
	workers := flag.Int("workers", 1, "default shared-memory workers per rank")
	aligner := flag.String("aligner", "muscle",
		fmt.Sprintf("default bucket aligner: %s", strings.Join(samplealign.SequentialAligners(), "|")))
	kernel := flag.String("kernel", "auto", "default DP kernel for jobs: auto|scalar|striped (byte-identical output)")
	maxConcurrent := flag.Int("max-concurrent", 2, "jobs aligning at once")
	maxQueued := flag.Int("max-queued", 64, "queued jobs beyond the running ones (429 past this)")
	maxProcs := flag.Int("max-procs", 64, "reject jobs requesting more ranks than this")
	workerBudget := flag.Int("worker-budget", 0, "clamp procs*workers per job (0 = no cap)")
	cacheEntries := flag.Int("cache-entries", 256, "result cache entry bound (-1 disables)")
	cacheBytes := flag.Int64("cache-bytes", 64<<20, "result cache byte bound (-1 unbounded)")
	dataDir := flag.String("data-dir", "", "durability directory: write-ahead job journal + on-disk result store (empty = in-memory only)")
	storeEntries := flag.Int("store-entries", 4096, "on-disk result store entry bound (-1 disables the disk tier)")
	storeBytes := flag.Int64("store-bytes", 1<<30, "on-disk result store byte bound (-1 unbounded)")
	journalBatchBytes := flag.Int("journal-batch-bytes", 0, "max framed bytes per journal commit group (0 = 1 MiB default); concurrent appends share one fsync")
	journalBatchWait := flag.Duration("journal-batch-wait", 0, "how long a journal group leader waits for followers before fsyncing (0 = flush immediately; batching still happens behind in-flight flushes)")
	drainTimeout := flag.Duration("drain-timeout", 30*time.Second, "how long SIGTERM/SIGINT waits for running jobs before hard-canceling (<0 skips draining)")
	cluster := flag.String("cluster", "", "comma-separated worker control addresses (samplealignd -worker-ctrl); empty = in-process ranks")
	clusterSelf := flag.String("cluster-self", "", "this server's rank-0 mesh listen address (required with -cluster)")
	logJSON := flag.Bool("log-json", false, "emit structured logs as JSON lines (default: text)")
	pprofAddr := flag.String("pprof-addr", "", "serve net/http/pprof on this address — a separate listener, never the public API mux (empty = disabled)")
	noTrace := flag.Bool("no-trace", false, "disable per-job span tracing (trace endpoint answers 404; output bytes are identical either way)")
	flag.Parse()

	logger := newLogger(*logJSON)

	cfg := samplealign.ServerConfig{
		DefaultProcs:      *procs,
		DefaultWorkers:    *workers,
		DefaultAligner:    *aligner,
		DefaultKernel:     *kernel,
		MaxConcurrent:     *maxConcurrent,
		MaxQueued:         *maxQueued,
		MaxProcs:          *maxProcs,
		WorkerBudget:      *workerBudget,
		CacheEntries:      *cacheEntries,
		CacheBytes:        *cacheBytes,
		DataDir:           *dataDir,
		StoreEntries:      *storeEntries,
		StoreBytes:        *storeBytes,
		JournalBatchBytes: *journalBatchBytes,
		JournalBatchWait:  *journalBatchWait,
		DrainTimeout:      *drainTimeout,
		ClusterSelf:       *clusterSelf,
		Logger:            logger,
		NoTrace:           *noTrace,
	}
	for _, w := range strings.Split(*cluster, ",") {
		if w = strings.TrimSpace(w); w != "" {
			cfg.ClusterWorkers = append(cfg.ClusterWorkers, w)
		}
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if *pprofAddr != "" {
		// pprof runs on its own listener so the profiling endpoints are
		// never reachable through the public API address.
		bound, psrv, err := obs.ServePprof(*pprofAddr)
		if err != nil {
			logger.Error("pprof listen failed", "addr", *pprofAddr, "err", err)
			os.Exit(1)
		}
		defer psrv.Close()
		logger.Info("pprof listening", "addr", bound)
	}
	srv, err := samplealign.NewServer(cfg)
	if err != nil {
		logger.Error("startup failed", "err", err)
		os.Exit(1)
	}
	if rec := srv.Recovery(); rec.Enabled {
		logger.Info("journal recovery complete", "data_dir", *dataDir,
			"journal_records", rec.JournalRecords, "finished_restored", rec.Finished,
			"requeued", rec.Requeued, "interrupted", rec.Interrupted,
			"clean_shutdown", rec.CleanShutdown)
	}
	mode := "inproc"
	if len(cfg.ClusterWorkers) > 0 {
		mode = fmt.Sprintf("cluster(%d workers)", len(cfg.ClusterWorkers))
	}
	logger.Info("listening", "addr", *addr, "executor", mode,
		"default_procs", *procs, "default_aligner", *aligner, "tracing", !*noTrace)
	if err := srv.ListenAndServe(ctx, *addr); err != nil {
		logger.Error("server failed", "err", err)
		os.Exit(1)
	}
}

// newLogger builds the process logger: text for humans by default, one
// JSON object per line with -log-json for log shippers.
func newLogger(jsonLines bool) *slog.Logger {
	var h slog.Handler
	if jsonLines {
		h = slog.NewJSONHandler(os.Stderr, nil)
	} else {
		h = slog.NewTextHandler(os.Stderr, nil)
	}
	return slog.New(h).With("app", "samplealignsrv")
}
