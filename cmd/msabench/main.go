// Command msabench regenerates every table and figure of the paper's
// evaluation section. Real experiments run the actual distributed
// pipeline at laptop scale; paper-scale series come from the calibrated
// Beowulf cost model (see internal/cluster). EXPERIMENTS.md is written
// from this tool's output.
//
// Usage:
//
//	msabench -exp all            # everything
//	msabench -exp fig4           # one experiment
//	msabench -exp table2 -quick  # smaller PREFAB benchmark
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"
	"time"

	samplealign "repro"
	"repro/internal/bio"
	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/dpkern"
	"repro/internal/engines"
	"repro/internal/kmer"
	"repro/internal/msa"
	"repro/internal/prefab"
	"repro/internal/stats"
	"repro/internal/submat"
)

func main() {
	exp := flag.String("exp", "all", "experiment: fig1|table1|fig3|fig4|fig5|fig6|table2|comm|all")
	quick := flag.Bool("quick", false, "reduce real-run sizes for fast smoke runs")
	seed := flag.Int64("seed", 2008, "master RNG seed")
	workers := flag.Int("workers", 0,
		"shared-memory workers for real runs, covering guide-tree construction (tiled distance matrix, UPGMA/NJ) and merging; 0 keeps the historical defaults (1 per distributed rank, all cores for sequential baselines)")
	kernel := flag.String("kernel", "auto", "DP kernel for every run: auto|scalar|striped (byte-identical output)")
	jsonOut := flag.String("json", "",
		"write machine-readable results of every real (non-simulated) run to this file")
	flag.Parse()

	kern, err := dpkern.Parse(*kernel)
	if err != nil {
		fmt.Fprintln(os.Stderr, "msabench:", err)
		os.Exit(2)
	}
	r := &runner{quick: *quick, seed: *seed, workers: *workers, kernel: kern}
	experiments := map[string]func() error{
		"fig1":   r.fig1,
		"table1": r.table1,
		"fig3":   r.fig3,
		"fig4":   r.fig4,
		"fig5":   r.fig5,
		"fig6":   r.fig6,
		"table2": r.table2,
		"comm":   r.comm,
	}
	order := []string{"fig1", "table1", "fig3", "fig4", "fig5", "fig6", "table2", "comm"}

	var names []string
	if *exp == "all" {
		names = order
	} else {
		for _, name := range strings.Split(*exp, ",") {
			if _, ok := experiments[strings.TrimSpace(name)]; !ok {
				fmt.Fprintf(os.Stderr, "unknown experiment %q (have %v, all)\n", name, order)
				os.Exit(2)
			}
			names = append(names, strings.TrimSpace(name))
		}
	}
	for _, name := range names {
		if err := experiments[name](); err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", name, err)
			os.Exit(1)
		}
	}
	if *jsonOut != "" {
		if err := writeResults(*jsonOut, r.results); err != nil {
			fmt.Fprintf(os.Stderr, "writing %s: %v\n", *jsonOut, err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "wrote %d real-run results to %s\n", len(r.results), *jsonOut)
	}
}

// BenchResult is one real (non-simulated) distributed run in the
// machine-readable -json output, the format the BENCH_*.json perf
// trajectory is built from.
type BenchResult struct {
	Name        string  `json:"name"`    // experiment/series label
	N           int     `json:"n"`       // input sequences
	P           int     `json:"p"`       // ranks
	Workers     int     `json:"workers"` // intra-rank workers (0 = historical default)
	Seconds     float64 `json:"seconds"`
	NsPerOp     int64   `json:"ns_per_op"`     // one op = one full distributed alignment
	AllocsPerOp uint64  `json:"allocs_per_op"` // heap allocations during the run
	BytesSent   int64   `json:"bytes_sent"`    // communication volume, all ranks
	BytesRecv   int64   `json:"bytes_received"`
}

func writeResults(path string, results []BenchResult) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(results); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

type runner struct {
	quick   bool
	seed    int64
	workers int           // intra-rank workers for the real runs
	kernel  dpkern.Kernel // DP kernel for every run (byte-identical output)

	diverse []bio.Sequence // cached Fig. 1/3/Table 1 input
	results []BenchResult  // real runs, written by -json
}

// measure runs one real distributed alignment, records a BenchResult
// (wall clock, allocations, comm volume) and returns the run for the
// experiment's own reporting.
func (r *runner) measure(name string, seqs []bio.Sequence, p int) (*core.Result, float64, error) {
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	start := time.Now()
	res, err := core.AlignInproc(seqs, p, r.realConfig())
	if err != nil {
		return nil, 0, err
	}
	elapsed := time.Since(start)
	runtime.ReadMemStats(&after)
	var sent, recv int64
	for _, s := range res.Stats {
		if s == nil {
			continue
		}
		sent += s.Comm.BytesSent
		recv += s.Comm.BytesRecv
	}
	r.results = append(r.results, BenchResult{
		Name:        name,
		N:           len(seqs),
		P:           p,
		Workers:     r.workers,
		Seconds:     elapsed.Seconds(),
		NsPerOp:     elapsed.Nanoseconds(),
		AllocsPerOp: after.Mallocs - before.Mallocs,
		BytesSent:   sent,
		BytesRecv:   recv,
	})
	return res, elapsed.Seconds(), nil
}

// realConfig is the core configuration of every real (non-simulated)
// distributed run: the paper defaults plus the -workers intra-rank
// parallelism. Flag value 0 keeps core's historical default of one
// worker per rank (the paper's single-CPU cluster nodes).
func (r *runner) realConfig() core.Config {
	return core.Config{Workers: r.workers, Kernel: r.kernel}
}

func (r *runner) header(title string) {
	fmt.Printf("\n== %s ==\n", title)
}

func (r *runner) diverseSet(n int) ([]bio.Sequence, error) {
	if r.quick && n > 400 {
		n = 400
	}
	if len(r.diverse) >= n {
		return r.diverse[:n], nil
	}
	seqs, err := samplealign.GenerateDiverseSet(n, 150, r.seed)
	if err != nil {
		return nil, err
	}
	r.diverse = seqs
	return seqs, nil
}

// centralGlobal computes centralised and globalised (k·p samples) ranks.
func centralGlobal(seqs []bio.Sequence, p int) (central, global []float64) {
	counter := kmer.MustCounter(bio.Dayhoff6, kmer.DefaultK)
	profiles := counter.Profiles(seqs, 0)
	central = kmer.Ranks(profiles, profiles, kmer.DefaultRankScale, 0)
	k := p - 1
	var pool []kmer.Profile
	n := len(seqs)
	for rk := 0; rk < p; rk++ {
		lo, hi := rk*n/p, (rk+1)*n/p
		for i := 0; i < k; i++ {
			idx := lo + (i+1)*(hi-lo)/(k+1)
			if idx >= hi {
				idx = hi - 1
			}
			pool = append(pool, profiles[idx])
		}
	}
	global = kmer.Ranks(profiles, pool, kmer.DefaultRankScale, 0)
	return central, global
}

func (r *runner) fig1() error {
	r.header("Fig. 1 — k-mer rank distribution, centralised vs globalised (N=500)")
	seqs, err := r.diverseSet(500)
	if err != nil {
		return err
	}
	central, global := centralGlobal(seqs, 16)
	fmt.Println("centralised ranks:")
	fmt.Print(stats.NewHistogram(central, 12).Render(40))
	fmt.Println("globalised ranks (k·p = 240 samples):")
	fmt.Print(stats.NewHistogram(global, 12).Render(40))
	corr, err := stats.Correlation(central, global)
	if err == nil {
		fmt.Printf("pearson(central, globalised) = %.4f (paper: distributions track closely)\n", corr)
	}
	return nil
}

func (r *runner) table1() error {
	r.header("Table 1 — statistics of globalised vs centralised rank (paper: N=5000)")
	n := 2000
	seqs, err := r.diverseSet(n)
	if err != nil {
		return err
	}
	central, global := centralGlobal(seqs, 16)
	sc, sg := stats.Summarize(central), stats.Summarize(global)
	variance, stddev, err := stats.DiffStats(global, central)
	if err != nil {
		return err
	}
	fmt.Printf("N = %d sequences (scaled from the paper's 5000)\n", len(seqs))
	fmt.Printf("%-40s (%8.5f, %8.5f)\n", "(Maximum, Minimum) Central", sc.Max, sc.Min)
	fmt.Printf("%-40s %8.5f\n", "Average Centralized", sc.Mean)
	fmt.Printf("%-40s (%8.5f, %8.5f)\n", "(Maximum, Minimum) Globalized", sg.Max, sg.Min)
	fmt.Printf("%-40s %8.5f\n", "Average Globalized", sg.Mean)
	fmt.Printf("%-40s %8.5f\n", "Variance w.r.t. Centralized", variance)
	fmt.Printf("%-40s %8.5f\n", "Standard Dev. w.r.t Centralized", stddev)
	fmt.Println("paper reference: max 1.462/1.448, avg 1.113/0.723, var 0.332, σ 0.576")
	return nil
}

func (r *runner) fig3() error {
	r.header("Fig. 3 — rank distribution of the experiment input")
	seqs, err := r.diverseSet(2000)
	if err != nil {
		return err
	}
	counter := kmer.MustCounter(bio.Dayhoff6, kmer.DefaultK)
	profiles := counter.Profiles(seqs, 0)
	ranks := kmer.Ranks(profiles, profiles, kmer.DefaultRankScale, 0)
	fmt.Print(stats.NewHistogram(ranks, 14).Render(40))
	s := stats.Summarize(ranks)
	fmt.Printf("mean %.4f  spread %.4f  (paper: \"in general evenly distributed\")\n",
		s.Mean, s.Max-s.Min)
	return nil
}

func (r *runner) fig4() error {
	r.header("Fig. 4 — execution time vs processors")
	// Real laptop-scale runs. In-process ranks share this machine's
	// cores, so wall-clock gains are bounded by core count; the
	// algorithmic gain (total work falling with p) shows in the trend.
	n := 1024
	if r.quick {
		n = 128
	}
	seqs, err := samplealign.GenerateDiverseSet(n, 120, r.seed+1)
	if err != nil {
		return err
	}
	fmt.Printf("real runs (N=%d, in-process ranks sharing local cores):\n", n)
	fmt.Printf("%6s %12s\n", "p", "seconds")
	for _, p := range []int{1, 2, 4, 8} {
		_, secs, err := r.measure("fig4", seqs, p)
		if err != nil {
			return err
		}
		fmt.Printf("%6d %12.3f\n", p, secs)
	}
	// paper-scale simulated series
	cal := cluster.Synthetic()
	fmt.Println("\nsimulated paper scale (calibrated Beowulf model, L=300):")
	fmt.Printf("%8s %10s %10s %10s\n", "p", "N=5000", "N=10000", "N=20000")
	for _, p := range []int{1, 4, 8, 12, 16} {
		fmt.Printf("%8d", p)
		for _, n := range []int{5000, 10000, 20000} {
			ph, err := cal.SampleAlignD(n, 300, p)
			if err != nil {
				return err
			}
			fmt.Printf(" %9.1fs", ph.Total)
		}
		fmt.Println()
	}
	fmt.Println("paper reference: curves decline sharply with p; 20000@16 ≈ tens of seconds")
	return nil
}

func (r *runner) fig5() error {
	r.header("Fig. 5 — speedup curves (superlinear)")
	n := 1024
	if r.quick {
		n = 128
	}
	seqs, err := samplealign.GenerateDiverseSet(n, 120, r.seed+1)
	if err != nil {
		return err
	}
	fmt.Printf("real runs (N=%d):\n%6s %12s %10s\n", n, "p", "seconds", "speedup")
	var t1 float64
	for _, p := range []int{1, 2, 4, 8} {
		_, secs, err := r.measure("fig5", seqs, p)
		if err != nil {
			return err
		}
		if p == 1 {
			t1 = secs
		}
		fmt.Printf("%6d %12.3f %10.2f\n", p, secs, t1/secs)
	}
	cal := cluster.Synthetic()
	fmt.Println("\nsimulated paper scale:")
	fmt.Printf("%8s %10s %10s %10s\n", "p", "N=5000", "N=10000", "N=20000")
	for _, p := range []int{4, 8, 12, 16} {
		fmt.Printf("%8d", p)
		for _, n := range []int{5000, 10000, 20000} {
			s, err := cal.Speedup(n, 300, p)
			if err != nil {
				return err
			}
			fmt.Printf(" %10.1f", s)
		}
		fmt.Println()
	}
	fmt.Println("paper reference: superlinear; N=5000/10000 dip at p=16, N=20000 keeps rising")
	return nil
}

func (r *runner) fig6() error {
	r.header("Fig. 6 — 2000 Methanosarcina acetivorans proteins")
	n := 256
	if r.quick {
		n = 96
	}
	seqs, err := samplealign.SampleGenomeProteins(
		samplealign.GenomeConfig{TargetBP: 600000, MeanProteinLen: 120, Seed: r.seed + 2}, n, r.seed+3)
	if err != nil {
		return err
	}
	fmt.Printf("real runs (synthetic genome sample, N=%d):\n%6s %12s\n", n, "p", "seconds")
	for _, p := range []int{1, 4, 8} {
		_, secs, err := r.measure("fig6", seqs, p)
		if err != nil {
			return err
		}
		fmt.Printf("%6d %12.3f\n", p, secs)
	}
	cal := cluster.Genome()
	fmt.Println("\nsimulated paper scale (N=2000, L=316):")
	seq := cal.SequentialMuscle(2000, 316)
	fmt.Printf("  sequential MUSCLE:        %8.1f s (%.1f h; paper ≈ 23 h)\n", seq, seq/3600)
	for _, p := range []int{4, 8, 12, 16} {
		ph, err := cal.SampleAlignD(2000, 316, p)
		if err != nil {
			return err
		}
		fmt.Printf("  sample-align-d p=%-2d:      %8.1f s (%.2f min, %.0f× vs MUSCLE)\n",
			p, ph.Total, ph.Total/60, seq/ph.Total)
	}
	fmt.Println("paper reference: 9.82 min on 16 nodes, a 142× speedup")
	return nil
}

func (r *runner) table2() error {
	r.header("Table 2 — PREFAB Q scores")
	numSets, perSet, meanLen := 12, 20, 160
	if r.quick {
		numSets, perSet, meanLen = 4, 10, 100
	}
	// Default divergence band (relatedness 1000–1800) puts the reference
	// pairs in the twilight zone, where the paper's Q band (0.54–0.65)
	// lives; see internal/prefab.
	sets, err := prefab.Generate(prefab.Config{
		NumSets: numSets, SeqsPerSet: perSet, MeanLen: meanLen,
		Seed: r.seed + 4,
	})
	if err != nil {
		return err
	}
	methods := []struct{ label, name string }{
		{"Sample-Align-D (p=4)", "sample-align-d:4"},
		{"MUSCLE", "muscle-refined"},
		{"MUSCLE-p (draft)", "muscle"},
		{"T-Coffee", "tcoffee"},
		{"NWNSI", "nwnsi"},
		{"FFTNSI", "fftnsi"},
		{"CLUSTALW", "clustal"},
	}
	paperQ := map[string]float64{
		"Sample-Align-D (p=4)": 0.544, "MUSCLE": 0.645, "MUSCLE-p (draft)": 0.634,
		"T-Coffee": 0.615, "NWNSI": 0.615, "FFTNSI": 0.591, "CLUSTALW": 0.563,
	}
	fmt.Printf("%-24s %10s %10s %10s\n", "METHOD", "Q (ours)", "Q (paper)", "seconds")
	for _, m := range methods {
		al, err := r.resolve(m.name)
		if err != nil {
			return err
		}
		start := time.Now()
		q, _, err := prefab.Evaluate(al, sets)
		if err != nil {
			return err
		}
		fmt.Printf("%-24s %10.3f %10.3f %10.1f\n", m.label, q, paperQ[m.label], time.Since(start).Seconds())
	}
	fmt.Println("shape to check: Sample-Align-D within the band of the sequential tools,")
	fmt.Println("below full MUSCLE (the paper's fine-grained-partitioning caveat)")
	return nil
}

func (r *runner) resolve(name string) (msa.Aligner, error) {
	if p, ok := strings.CutPrefix(name, "sample-align-d:"); ok {
		var procs int
		if _, err := fmt.Sscanf(p, "%d", &procs); err != nil {
			return nil, err
		}
		return &core.InprocAligner{P: procs, Cfg: r.realConfig()}, nil
	}
	return engines.NewWithKernel(name, r.workers, r.kernel)
}

func (r *runner) comm() error {
	r.header("§3 — communication cost and load balance")
	n := 512
	if r.quick {
		n = 128
	}
	seqs, err := samplealign.GenerateDiverseSet(n, 120, r.seed+5)
	if err != nil {
		return err
	}
	fmt.Printf("%6s %14s %12s %14s %12s\n", "p", "bytes sent", "messages", "max bucket", "bound 2N/p")
	for _, p := range []int{2, 4, 8} {
		res, _, err := r.measure("comm", seqs, p)
		if err != nil {
			return err
		}
		var bytes, msgs int64
		for _, s := range res.Stats {
			bytes += s.Comm.BytesSent
			msgs += s.Comm.MsgsSent
		}
		maxBucket := 0
		for _, sz := range res.Stats[0].BucketSizes {
			if sz > maxBucket {
				maxBucket = sz
			}
		}
		fmt.Printf("%6d %14d %12d %14d %12d\n", p, bytes, msgs, maxBucket, 2*n/p)
	}
	// SP sanity on a homologous family (the algorithm's stated input
	// class): the GA fine-tune must beat block-diagonal concatenation.
	// On sets of mostly unrelated sequences, SP under BLOSUM62 prefers
	// gapping strangers apart, so a family is the meaningful check.
	famN := 128
	if r.quick {
		famN = 48
	}
	fam, err := samplealign.GenerateFamily(samplealign.FamilyConfig{
		N: famN, MeanLen: 120, Relatedness: 400, Seed: r.seed + 6,
	})
	if err != nil {
		return err
	}
	tuned, err := core.AlignInproc(fam, 4, r.realConfig())
	if err != nil {
		return err
	}
	naiveCfg := r.realConfig()
	naiveCfg.NoFineTune = true
	naive, err := core.AlignInproc(fam, 4, naiveCfg)
	if err != nil {
		return err
	}
	spT := msa.SPScoreSampled(tuned.Alignment, submat.BLOSUM62, submat.DefaultProteinGap, 4000, 1)
	spN := msa.SPScoreSampled(naive.Alignment, submat.BLOSUM62, submat.DefaultProteinGap, 4000, 1)
	fmt.Printf("homologous family (N=%d): sampled SP with GA fine-tune %.0f, without %.0f\n",
		famN, spT, spN)
	if spT > spN {
		fmt.Println("ancestor fine-tuning wins, as the paper's Fig. 2 illustrates")
	} else {
		fmt.Println("WARNING: fine-tuning did not win on this seed")
	}
	return nil
}
