// Command msascore evaluates multiple sequence alignments: the affine
// sum-of-pairs score of one alignment, the Q accuracy of a test
// alignment against a reference, per-column conservation and CLUSTAL
// rendering — the assessment loop the paper runs with PREFAB.
//
// Usage:
//
//	msascore -in aligned.fa                    # SP score + conservation summary
//	msascore -in aligned.fa -ref reference.fa  # Q against a reference
//	msascore -in aligned.fa -clustal           # render as CLUSTAL .aln
package main

import (
	"flag"
	"fmt"
	"os"

	samplealign "repro"
)

func main() {
	in := flag.String("in", "", "aligned FASTA file to score (required)")
	ref := flag.String("ref", "", "reference aligned FASTA for the Q measure")
	clustal := flag.Bool("clustal", false, "render the alignment as CLUSTAL .aln to stdout")
	blocks := flag.Bool("blocks", false, "list conserved blocks (conservation ≥ 0.8, length ≥ 5)")
	flag.Parse()

	if *in == "" {
		flag.Usage()
		os.Exit(2)
	}
	aln, err := samplealign.LoadAlignment(*in)
	if err != nil {
		fatal(err)
	}
	if *clustal {
		if err := samplealign.WriteClustal(os.Stdout, aln); err != nil {
			fatal(err)
		}
		return
	}
	fmt.Printf("%s: %d sequences × %d columns\n", *in, aln.NumSeqs(), aln.Width())
	fmt.Printf("SP score (BLOSUM62, affine gaps): %.1f\n", samplealign.SPScore(aln))

	cons := samplealign.ColumnConservation(aln)
	var mean float64
	for _, c := range cons {
		mean += c
	}
	if len(cons) > 0 {
		mean /= float64(len(cons))
	}
	fmt.Printf("mean column conservation: %.3f\n", mean)

	if *blocks {
		for _, b := range samplealign.ConservedBlocks(aln, 0.8, 5) {
			fmt.Printf("conserved block: columns %d..%d (%d cols)\n", b[0], b[1]-1, b[1]-b[0])
		}
	}
	if *ref != "" {
		refAln, err := samplealign.LoadAlignment(*ref)
		if err != nil {
			fatal(err)
		}
		q, err := samplealign.QScore(aln, refAln)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("Q vs %s: %.4f\n", *ref, q)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "msascore:", err)
	os.Exit(1)
}
