package samplealign

import (
	"fmt"
	"math/rand"

	"repro/internal/genome"
	"repro/internal/msa"
	"repro/internal/prefab"
	"repro/internal/rose"
)

func newSplitRand(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }

func fmtFamID(fam, member int) string { return fmt.Sprintf("f%03dm%03d", fam, member) }

// Dataset helpers: the synthetic workloads the paper evaluates on,
// exposed so downstream users (and the examples) can regenerate them.

// FamilyConfig parameterises a ROSE-like synthetic protein family
// (the paper's Fig. 3/4/5 workload).
type FamilyConfig struct {
	N           int     // number of sequences
	MeanLen     int     // ancestor length (paper: 300)
	Relatedness float64 // ROSE relatedness knob (paper: 800)
	Seed        int64
}

// GenerateFamily evolves a synthetic homologous family.
func GenerateFamily(cfg FamilyConfig) ([]Sequence, error) {
	f, err := rose.Evolve(rose.Config{
		N: cfg.N, MeanLen: cfg.MeanLen, Relatedness: cfg.Relatedness, Seed: cfg.Seed,
	})
	if err != nil {
		return nil, err
	}
	return f.Seqs(), nil
}

// GenerateDiverseSet builds a phylogenetically diverse sequence set —
// the workload Sample-Align-D targets — by pooling many independent
// families of varied size and divergence. Unlike a single deep family
// (where every k-mer rank saturates), a mixture spreads the rank
// distribution the way the paper's Fig. 3 shows, and redistribution then
// groups related sequences onto the same rank.
func GenerateDiverseSet(n, meanLen int, seed int64) ([]Sequence, error) {
	rng := newSplitRand(seed)
	var out []Sequence
	fam := 0
	for len(out) < n {
		// Family sizes span singletons to ~40% of the set and divergence
		// spans tight (50) to saturated (800): members of large tight
		// families have low average k-mer distance, singletons high, so
		// the rank distribution spreads the way the paper's Fig. 3 shows.
		size := 2 + rng.Intn(max(4, 2*n/5))
		if size > n-len(out) {
			size = n - len(out)
		}
		f, err := rose.Evolve(rose.Config{
			N:           size,
			MeanLen:     meanLen/2 + rng.Intn(meanLen+1),
			Relatedness: 50 + rng.Float64()*750,
			Seed:        rng.Int63(),
		})
		if err != nil {
			return nil, err
		}
		for m, s := range f.Seqs() {
			out = append(out, Sequence{
				ID:   fmtFamID(fam, m),
				Data: s.Data,
			})
		}
		fam++
	}
	return out[:n], nil
}

// GenomeConfig parameterises the synthetic archaeal genome standing in
// for Methanosarcina acetivorans (paper: 5 Mbp, ~2000 sampled proteins of
// average length 316).
type GenomeConfig struct {
	TargetBP       int
	MeanProteinLen int
	Seed           int64
}

// SampleGenomeProteins synthesises a genome and samples n proteins from
// it, the paper's Fig. 6 workload.
func SampleGenomeProteins(cfg GenomeConfig, n int, sampleSeed int64) ([]Sequence, error) {
	g, err := genome.Synthesize(genome.Config{
		TargetBP: cfg.TargetBP, MeanProteinLen: cfg.MeanProteinLen, Seed: cfg.Seed,
	})
	if err != nil {
		return nil, err
	}
	return g.Sample(n, sampleSeed), nil
}

// PrefabSet is one PREFAB-like benchmark unit: sequences plus the true
// reference alignment of two of them.
type PrefabSet struct {
	ID   string
	Seqs []Sequence
	Ref  *Alignment
}

// GeneratePrefab builds a PREFAB-like quality benchmark (the paper's
// Table 2 workload): numSets sets of ~24 sequences of varying divergence.
func GeneratePrefab(numSets int, seed int64) ([]PrefabSet, error) {
	sets, err := prefab.Generate(prefab.Config{NumSets: numSets, Seed: seed})
	if err != nil {
		return nil, err
	}
	out := make([]PrefabSet, len(sets))
	for i, s := range sets {
		out[i] = PrefabSet{ID: s.ID, Seqs: s.Seqs, Ref: s.Ref}
	}
	return out, nil
}

// EvaluatePrefab scores an aligner (by name, or "sample-align-d:p" for
// the distributed aligner on p ranks) on a PREFAB-like benchmark and
// returns the mean Q score.
func EvaluatePrefab(alignerName string, sets []PrefabSet) (float64, error) {
	al, err := resolveAligner(alignerName)
	if err != nil {
		return 0, err
	}
	native := make([]prefab.Set, len(sets))
	for i, s := range sets {
		native[i] = prefab.Set{ID: s.ID, Seqs: s.Seqs, Ref: s.Ref}
	}
	mean, _, err := prefab.Evaluate(al, native)
	return mean, err
}

func resolveAligner(name string) (msa.Aligner, error) {
	if n, ok := parseSampleAlignName(name); ok {
		return &coreInprocAligner{p: n}, nil
	}
	return NewAligner(name, 0)
}
