// Quickstart: align a small protein family with the public API and
// inspect the result. Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	samplealign "repro"
)

func main() {
	// A toy family: fragments of a conserved domain with substitutions
	// and an indel, the kind of input any MSA tool sees daily.
	seqs := []samplealign.Sequence{
		samplealign.NewSequence("orthologA", "MKVLITGAGSGIGLAIAKRFAEEGA"),
		samplealign.NewSequence("orthologB", "MKVLVTGAGSGIGLAISKRFAEEGA"),
		samplealign.NewSequence("orthologC", "MKVLITGAGSGIGKAIAKRFEEGA"), // one deletion
		samplealign.NewSequence("orthologD", "MRVLITGAGSGIGLAIAQRFAEEGA"),
		samplealign.NewSequence("paralogE", "MKVITGSGSGIGAIAKRFAEGAKQ"),
		samplealign.NewSequence("paralogF", "MKVVTGSGSGIGAIARRFAEGAKQ"),
	}

	// Align over 2 in-process ranks — the same code path a 16-node
	// cluster runs, just with goroutines standing in for nodes.
	aln, report, err := samplealign.Align(seqs, 2)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("aligned rows:")
	for _, row := range aln.Seqs {
		fmt.Printf("  %-10s %s\n", row.ID, row.Data)
	}
	fmt.Printf("\nwidth: %d columns, SP score: %.1f\n", aln.Width(), samplealign.SPScore(aln))
	fmt.Println(report.Summary())
}
