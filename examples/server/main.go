// Embedded job server with durability: run the alignment service
// in-process with a data directory, submit a job over HTTP, poll it to
// completion, fetch the result, show the content-addressed cache
// answering an identical resubmission instantly — then restart the
// server on the same data directory and show the finished job and its
// result surviving, served from disk without recomputing. Run with:
//
//	go run ./examples/server
package main

import (
	"encoding/json"
	"fmt"
	"io"
	"log"
	"net/http"
	"net/http/httptest"
	"os"
	"strings"
	"time"

	samplealign "repro"
)

func main() {
	// The same ServerConfig drives cmd/samplealignsrv; embedded here so
	// the example is self-contained (httptest stands in for a listener).
	// DataDir enables the write-ahead journal and the on-disk result
	// store — a restart on the same directory recovers everything.
	dataDir, err := os.MkdirTemp("", "samplealign-server-example")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dataDir)
	cfg := samplealign.ServerConfig{
		DefaultProcs:  2,
		MaxConcurrent: 2,
		MaxQueued:     16,
		DataDir:       dataDir,
	}
	srv, err := samplealign.NewServer(cfg)
	if err != nil {
		log.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())

	fasta := strings.Join([]string{
		">orthologA", "MKVLITGAGSGIGLAIAKRFAEEGA",
		">orthologB", "MKVLVTGAGSGIGLAISKRFAEEGA",
		">orthologC", "MKVLITGAGSGIGKAIAKRFEEGA",
		">orthologD", "MRVLITGAGSGIGLAIAQRFAEEGA",
	}, "\n") + "\n"

	// Submit (async): 202 + a job id.
	resp, err := http.Post(ts.URL+"/v1/jobs?procs=2", "text/x-fasta", strings.NewReader(fasta))
	if err != nil {
		log.Fatal(err)
	}
	var job struct {
		ID    string `json:"id"`
		State string `json:"state"`
		Error string `json:"error"`
	}
	decode(resp, &job)
	fmt.Printf("submitted job %s (%s)\n", job.ID, job.State)

	// Poll until terminal.
	for job.State == "queued" || job.State == "running" {
		time.Sleep(20 * time.Millisecond)
		r, err := http.Get(ts.URL + "/v1/jobs/" + job.ID)
		if err != nil {
			log.Fatal(err)
		}
		decode(r, &job)
	}
	if job.State != "done" {
		log.Fatalf("job ended %s: %s", job.State, job.Error)
	}

	// Fetch the aligned FASTA.
	r, err := http.Get(ts.URL + "/v1/jobs/" + job.ID + "/result")
	if err != nil {
		log.Fatal(err)
	}
	aligned, _ := io.ReadAll(r.Body)
	r.Body.Close()
	fmt.Printf("result (%s):\n%s", r.Header.Get("X-Cache"), aligned)

	// Identical resubmission: answered from the content-addressed cache
	// without re-running the alignment (state done, cached true, 200).
	resp2, err := http.Post(ts.URL+"/v1/jobs?procs=2", "text/x-fasta", strings.NewReader(fasta))
	if err != nil {
		log.Fatal(err)
	}
	var again struct {
		State  string `json:"state"`
		Cached bool   `json:"cached"`
	}
	decode(resp2, &again)
	fmt.Printf("resubmission: state %s, cached %v\n", again.State, again.Cached)

	// "Restart": close this server and open a fresh one on the same
	// DataDir. The journal replay restores the finished job, and its
	// result streams straight from the on-disk store — nothing re-runs.
	ts.Close()
	srv.Close()
	srv2, err := samplealign.NewServer(cfg)
	if err != nil {
		log.Fatal(err)
	}
	defer srv2.Close()
	rec := srv2.Recovery()
	fmt.Printf("after restart: %d journal records, %d finished restored, %d re-enqueued (clean shutdown: %v)\n",
		rec.JournalRecords, rec.Finished, rec.Requeued, rec.CleanShutdown)
	ts2 := httptest.NewServer(srv2.Handler())
	defer ts2.Close()
	r2, err := http.Get(ts2.URL + "/v1/jobs/" + job.ID + "/result")
	if err != nil {
		log.Fatal(err)
	}
	recovered, _ := io.ReadAll(r2.Body)
	r2.Body.Close()
	fmt.Printf("result after restart (status %d, streamed from disk): identical = %v\n",
		r2.StatusCode, string(recovered) == string(aligned))
}

func decode(resp *http.Response, v any) {
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
		log.Fatal(err)
	}
}
