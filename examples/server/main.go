// Embedded job server: run the alignment service in-process, submit a
// job over HTTP, poll it to completion, fetch the result, and show the
// content-addressed cache answering an identical resubmission
// instantly. Run with:
//
//	go run ./examples/server
package main

import (
	"encoding/json"
	"fmt"
	"io"
	"log"
	"net/http"
	"net/http/httptest"
	"strings"
	"time"

	samplealign "repro"
)

func main() {
	// The same ServerConfig drives cmd/samplealignsrv; embedded here so
	// the example is self-contained (httptest stands in for a listener).
	srv, err := samplealign.NewServer(samplealign.ServerConfig{
		DefaultProcs:  2,
		MaxConcurrent: 2,
		MaxQueued:     16,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	fasta := strings.Join([]string{
		">orthologA", "MKVLITGAGSGIGLAIAKRFAEEGA",
		">orthologB", "MKVLVTGAGSGIGLAISKRFAEEGA",
		">orthologC", "MKVLITGAGSGIGKAIAKRFEEGA",
		">orthologD", "MRVLITGAGSGIGLAIAQRFAEEGA",
	}, "\n") + "\n"

	// Submit (async): 202 + a job id.
	resp, err := http.Post(ts.URL+"/v1/jobs?procs=2", "text/x-fasta", strings.NewReader(fasta))
	if err != nil {
		log.Fatal(err)
	}
	var job struct {
		ID    string `json:"id"`
		State string `json:"state"`
		Error string `json:"error"`
	}
	decode(resp, &job)
	fmt.Printf("submitted job %s (%s)\n", job.ID, job.State)

	// Poll until terminal.
	for job.State == "queued" || job.State == "running" {
		time.Sleep(20 * time.Millisecond)
		r, err := http.Get(ts.URL + "/v1/jobs/" + job.ID)
		if err != nil {
			log.Fatal(err)
		}
		decode(r, &job)
	}
	if job.State != "done" {
		log.Fatalf("job ended %s: %s", job.State, job.Error)
	}

	// Fetch the aligned FASTA.
	r, err := http.Get(ts.URL + "/v1/jobs/" + job.ID + "/result")
	if err != nil {
		log.Fatal(err)
	}
	aligned, _ := io.ReadAll(r.Body)
	r.Body.Close()
	fmt.Printf("result (%s):\n%s", r.Header.Get("X-Cache"), aligned)

	// Identical resubmission: answered from the content-addressed cache
	// without re-running the alignment (state done, cached true, 200).
	resp2, err := http.Post(ts.URL+"/v1/jobs?procs=2", "text/x-fasta", strings.NewReader(fasta))
	if err != nil {
		log.Fatal(err)
	}
	var again struct {
		State  string `json:"state"`
		Cached bool   `json:"cached"`
	}
	decode(resp2, &again)
	fmt.Printf("resubmission: state %s, cached %v\n", again.State, again.Cached)
}

func decode(resp *http.Response, v any) {
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
		log.Fatal(err)
	}
}
