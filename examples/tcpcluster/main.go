// tcpcluster demonstrates a real multi-process-style cluster run: four
// ranks connected over TCP loopback, each holding a shard of the input —
// the same wire protocol a physical cluster would use, in one process
// for convenience. Run with:
//
//	go run ./examples/tcpcluster
package main

import (
	"fmt"
	"log"
	"net"
	"sync"

	samplealign "repro"
	"repro/internal/core"
)

const procs = 4

func main() {
	seqs, err := samplealign.GenerateDiverseSet(64, 90, 11)
	if err != nil {
		log.Fatal(err)
	}
	// Shard the input block-wise, like the paper's pre-placed node files.
	shards, _ := core.SplitBlocks(seqs, procs)

	// Reserve loopback ports for every rank.
	addrs := make([]string, procs)
	listeners := make([]net.Listener, procs)
	for i := range addrs {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			log.Fatal(err)
		}
		listeners[i] = ln
		addrs[i] = ln.Addr().String()
	}
	for _, ln := range listeners {
		ln.Close()
	}

	fmt.Printf("starting %d TCP ranks on %v\n", procs, addrs)
	var (
		wg    sync.WaitGroup
		final *samplealign.Alignment
		mu    sync.Mutex
	)
	for rank := 0; rank < procs; rank++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			aln, err := samplealign.AlignTCP(
				samplealign.TCPRankConfig{Rank: rank, Addrs: addrs},
				shards[rank],
			)
			if err != nil {
				log.Fatalf("rank %d: %v", rank, err)
			}
			if rank == 0 {
				mu.Lock()
				final = aln
				mu.Unlock()
			}
		}(rank)
	}
	wg.Wait()

	fmt.Printf("rank 0 received the glued alignment: %d rows x %d columns\n",
		final.NumSeqs(), final.Width())
	fmt.Printf("SP score: %.1f\n", samplealign.SPScore(final))
	for _, row := range final.Seqs[:3] {
		fmt.Printf("  %-10s %.60s...\n", row.ID, row.Data)
	}
	fmt.Printf("  ... and %d more rows\n", final.NumSeqs()-3)
}
