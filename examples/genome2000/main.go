// genome2000 reproduces the paper's §4 real-data experiment at two
// scales: a real run on proteins sampled from the synthetic archaeal
// genome (laptop scale), and the paper-scale numbers from the calibrated
// cluster model (2000 proteins, 16 nodes, 23 h vs 9.82 min). Run with:
//
//	go run ./examples/genome2000 [-n 200] [-p 4]
package main

import (
	"flag"
	"fmt"
	"log"
	"time"

	samplealign "repro"
	"repro/internal/cluster"
)

func main() {
	n := flag.Int("n", 200, "number of proteins to sample (paper: 2000)")
	p := flag.Int("p", 4, "ranks for the real run (paper: 16 nodes)")
	flag.Parse()

	fmt.Printf("synthesising archaeal genome and sampling %d proteins...\n", *n)
	seqs, err := samplealign.SampleGenomeProteins(samplealign.GenomeConfig{
		TargetBP:       1_000_000, // scaled from the paper's 5 Mbp
		MeanProteinLen: 150,       // scaled from the paper's 316
		Seed:           2008,
	}, *n, 42)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("aligning %d proteins on %d ranks...\n", len(seqs), *p)
	start := time.Now()
	aln, report, err := samplealign.Align(seqs, *p)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("done in %v: %d rows × %d columns\n",
		time.Since(start).Round(time.Millisecond), aln.NumSeqs(), aln.Width())
	fmt.Println(report.Summary())

	// Paper-scale projection from the calibrated Beowulf model.
	cal := cluster.Genome()
	seq := cal.SequentialMuscle(2000, 316)
	fmt.Printf("\npaper scale (simulated, N=2000, L=316):\n")
	fmt.Printf("  sequential MUSCLE : %6.1f h   (paper: ~23 h)\n", seq/3600)
	for _, procs := range []int{4, 8, 16} {
		ph, err := cal.SampleAlignD(2000, 316, procs)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  sample-align-d p=%-2d: %6.2f min (%.0fx)\n",
			procs, ph.Total/60, seq/ph.Total)
	}
	fmt.Println("  (paper: 9.82 min on 16 nodes — a 142x speedup)")
}
