// prefabquality reproduces the paper's Table 2 quality assessment: every
// built-in aligner plus Sample-Align-D is scored on a PREFAB-like
// benchmark with the Q measure (correctly aligned residue pairs /
// reference pairs). Run with:
//
//	go run ./examples/prefabquality [-sets 6]
package main

import (
	"flag"
	"fmt"
	"log"
	"time"

	samplealign "repro"
)

func main() {
	numSets := flag.Int("sets", 6, "number of PREFAB-like sets (paper: 1000)")
	flag.Parse()

	sets, err := samplealign.GeneratePrefab(*numSets, 7)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("generated %d PREFAB-like sets (pair references from recorded evolution)\n\n", len(sets))

	methods := []string{
		"sample-align-d:4", "muscle-refined", "muscle", "tcoffee", "nwnsi", "fftnsi", "clustal",
	}
	fmt.Printf("%-20s %8s %10s\n", "METHOD", "Q", "seconds")
	for _, m := range methods {
		start := time.Now()
		q, err := samplealign.EvaluatePrefab(m, sets)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-20s %8.3f %10.1f\n", m, q, time.Since(start).Seconds())
	}
	fmt.Println("\npaper's Table 2 (for shape comparison): Sample-Align-D 0.544, MUSCLE 0.645,")
	fmt.Println("MUSCLE-p 0.634, T-Coffee 0.615, NWNSI 0.615, FFTNSI 0.591, CLUSTALW 0.563")
}
