package samplealign

import (
	"bytes"
	"fmt"
	"net"
	"sync"
	"testing"

	"repro/internal/core"
)

// reserveAddrs grabs n loopback ports for a TCP world.
func reserveAddrs(t *testing.T, n int) []string {
	t.Helper()
	addrs := make([]string, n)
	lns := make([]net.Listener, n)
	for i := range addrs {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		lns[i] = ln
		addrs[i] = ln.Addr().String()
	}
	for _, ln := range lns {
		ln.Close()
	}
	return addrs
}

// TestTCPClusterEndToEnd runs the full distributed pipeline over real
// TCP sockets and checks the glued alignment against the in-process run:
// the transport must not change the result.
func TestTCPClusterEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("tcp cluster test in -short mode")
	}
	const procs = 4
	seqs, err := GenerateDiverseSet(48, 80, 77)
	if err != nil {
		t.Fatal(err)
	}
	inproc, _, err := Align(seqs, procs)
	if err != nil {
		t.Fatal(err)
	}

	shards, _ := core.SplitBlocks(seqs, procs)
	addrs := reserveAddrs(t, procs)
	results := make([]*Alignment, procs)
	errs := make(chan error, procs)
	var wg sync.WaitGroup
	for rank := 0; rank < procs; rank++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			aln, err := AlignTCP(TCPRankConfig{Rank: rank, Addrs: addrs}, shards[rank])
			if err != nil {
				errs <- fmt.Errorf("rank %d: %w", rank, err)
				return
			}
			results[rank] = aln
		}(rank)
	}
	wg.Wait()
	select {
	case err := <-errs:
		t.Fatal(err)
	default:
	}

	final := results[0]
	if final == nil {
		t.Fatal("rank 0 returned nil alignment")
	}
	for r := 1; r < procs; r++ {
		if results[r] != nil {
			t.Fatalf("rank %d returned a non-nil alignment", r)
		}
	}
	if err := final.Validate(); err != nil {
		t.Fatal(err)
	}
	if final.NumSeqs() != len(seqs) {
		t.Fatalf("tcp alignment has %d rows", final.NumSeqs())
	}
	// Note: the TCP world orders rows by rank-derived keys, the inproc
	// driver by original index. Block-wise sharding makes those agree.
	if final.Width() != inproc.Width() {
		t.Fatalf("tcp width %d != inproc width %d", final.Width(), inproc.Width())
	}
	for i := range seqs {
		if final.Seqs[i].ID != inproc.Seqs[i].ID {
			t.Fatalf("row %d: tcp id %q != inproc id %q", i, final.Seqs[i].ID, inproc.Seqs[i].ID)
		}
		if !bytes.Equal(final.Seqs[i].Data, inproc.Seqs[i].Data) {
			t.Fatalf("row %d (%s): tcp and inproc alignments differ", i, final.Seqs[i].ID)
		}
	}
}

// TestFullPipelineOnDiverseMixture is the end-to-end smoke of the whole
// public surface: generate → align → score → serialise → parse.
func TestFullPipelineOnDiverseMixture(t *testing.T) {
	seqs, err := GenerateDiverseSet(40, 70, 5)
	if err != nil {
		t.Fatal(err)
	}
	aln, report, err := Align(seqs, 4, WithSampleSize(5))
	if err != nil {
		t.Fatal(err)
	}
	if err := aln.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(report.BucketSizes) != 4 {
		t.Fatalf("bucket sizes: %v", report.BucketSizes)
	}
	total := 0
	for _, s := range report.BucketSizes {
		total += s
	}
	if total != len(seqs) {
		t.Fatalf("buckets cover %d of %d", total, len(seqs))
	}
	var buf bytes.Buffer
	if err := WriteFASTA(&buf, aln.Seqs); err != nil {
		t.Fatal(err)
	}
	back, err := ReadFASTA(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != len(seqs) {
		t.Fatalf("serialisation lost rows: %d", len(back))
	}
	for i := range back {
		if !bytes.Equal(back[i].Data, aln.Seqs[i].Data) {
			t.Fatalf("row %d changed across FASTA round trip", i)
		}
	}
}

// TestAlignManyProcessCounts sweeps p to catch world-size-specific bugs
// (odd sizes, p > families, p near N).
func TestAlignManyProcessCounts(t *testing.T) {
	seqs, err := GenerateDiverseSet(30, 60, 9)
	if err != nil {
		t.Fatal(err)
	}
	ref, _, err := Align(seqs, 1)
	if err != nil {
		t.Fatal(err)
	}
	_ = ref
	for _, p := range []int{2, 3, 5, 7, 11, 16} {
		aln, _, err := Align(seqs, p)
		if err != nil {
			t.Fatalf("p=%d: %v", p, err)
		}
		if err := aln.Validate(); err != nil {
			t.Fatalf("p=%d: %v", p, err)
		}
		if aln.NumSeqs() != len(seqs) {
			t.Fatalf("p=%d: %d rows", p, aln.NumSeqs())
		}
		for i := range seqs {
			got := string(bytes.ReplaceAll(aln.Seqs[i].Data, []byte{'-'}, nil))
			if got != seqs[i].String() {
				t.Fatalf("p=%d row %d: residues corrupted", p, i)
			}
		}
	}
}
