package samplealign

import (
	"bytes"
	"fmt"
	"sync"
	"testing"
)

// renderRows flattens an alignment to one comparable byte string.
func renderRows(a *Alignment) []byte {
	var buf bytes.Buffer
	for _, s := range a.Seqs {
		buf.WriteString(s.ID)
		buf.WriteByte('\t')
		buf.Write(s.Data)
		buf.WriteByte('\n')
	}
	return buf.Bytes()
}

// runTCPCluster aligns seqs over a real TCP world of p ranks and returns
// rank 0's alignment.
func runTCPCluster(t *testing.T, seqs []Sequence, p int, opts ...Option) *Alignment {
	t.Helper()
	shards := splitForTCP(seqs, p)
	addrs := reserveAddrs(t, p)
	results := make([]*Alignment, p)
	errs := make(chan error, p)
	var wg sync.WaitGroup
	for rank := 0; rank < p; rank++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			aln, err := AlignTCP(TCPRankConfig{Rank: rank, Addrs: addrs}, shards[rank], opts...)
			if err != nil {
				errs <- fmt.Errorf("rank %d: %w", rank, err)
				return
			}
			results[rank] = aln
		}(rank)
	}
	wg.Wait()
	select {
	case err := <-errs:
		t.Fatal(err)
	default:
	}
	if results[0] == nil {
		t.Fatal("rank 0 returned nil alignment")
	}
	return results[0]
}

func splitForTCP(seqs []Sequence, p int) [][]Sequence {
	out := make([][]Sequence, p)
	n := len(seqs)
	for r := 0; r < p; r++ {
		out[r] = seqs[r*n/p : (r+1)*n/p]
	}
	return out
}

// TestCrossBackendEquivalence asserts that, at each world size, the
// in-process driver and the TCP cluster compute byte-identical
// alignments on a fixed dataset, and that the result does not depend on
// the intra-rank worker count. (Different p values legitimately produce
// different alignments — the bucket decomposition and the GA template
// are part of the algorithm — so equivalence is per-p, across backends
// and worker counts.)
func TestCrossBackendEquivalence(t *testing.T) {
	if testing.Short() {
		t.Skip("tcp cluster test in -short mode")
	}
	seqs, err := GenerateDiverseSet(48, 80, 2026)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range []int{1, 4} {
		t.Run(fmt.Sprintf("p=%d", p), func(t *testing.T) {
			inproc, _, err := Align(seqs, p)
			if err != nil {
				t.Fatal(err)
			}
			ref := renderRows(inproc)

			// Intra-rank parallelism must not change the result.
			for _, w := range []int{4, 8} {
				aln, _, err := Align(seqs, p, WithWorkers(w))
				if err != nil {
					t.Fatalf("workers=%d: %v", w, err)
				}
				if !bytes.Equal(renderRows(aln), ref) {
					t.Fatalf("inproc p=%d workers=%d differs from workers=1", p, w)
				}
			}

			// The transport must not change the result either.
			tcp := runTCPCluster(t, seqs, p, WithWorkers(4))
			if !bytes.Equal(renderRows(tcp), ref) {
				t.Fatalf("tcp p=%d differs from inproc", p)
			}
		})
	}
}
